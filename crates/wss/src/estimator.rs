//! Pluggable working-set-size estimators.
//!
//! The paper's only WSS signal is swap-device I/O (§IV-D): cheap, but
//! blind until the VM actually swaps. Bitchebe et al. (*Intel Page
//! Modification Logging for VM working set estimation*, PAPERS.md)
//! estimate WSS from hardware dirty logs with **zero** swap pressure.
//! [`WssEstimator`] abstracts over both so the cluster executor's
//! sampling chain, reservation sizing, and the watermark scheduler all
//! run off a trait object:
//!
//! * [`SwapIoEstimator`] — the legacy path, a [`SwapActivityMonitor`]
//!   feeding the α/β/τ [`ReservationController`]; bit-identical to the
//!   pre-trait arithmetic, so golden traces replay byte-for-byte.
//! * [`PmlEstimator`] — sizes the reservation from per-epoch dirty-page
//!   counts (the simulated-PML drains fed in via
//!   [`WssObservation::epoch`]). Reservation arithmetic is exactly
//!   linear in the estimate (`pages * (page_size / headroom_den) *
//!   headroom_num`, no flooring) so power-of-two workload scalings map
//!   to power-of-two reservation scalings — the metamorphic suite pins
//!   this.
//! * [`GroundTruthWss`] — an oracle consuming the *exact*
//!   distinct-pages-touched count. Test/bench only: real hosts cannot
//!   observe it; the accuracy harness scores the other two against it.
//!
//! Estimators are sans-IO: the executor samples devices and drains epoch
//! trackers, then hands both to [`WssEstimator::on_tick`] as a
//! [`WssObservation`]. Inputs an estimator does not consume are ignored
//! (the swap-I/O estimator disregards epoch drains), which lets the A/B
//! harness arm the ground-truth oracle alongside either estimator
//! without perturbing it.

use agile_sim_core::{IoCounters, SimDuration, SimTime};

use crate::controller::{Adjustment, ControllerParams, ReservationController};
use crate::monitor::SwapActivityMonitor;

/// One simulated-PML epoch drain, as observed by the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSample {
    /// The bounded-log (PML) page count — exact unless `overflowed`.
    pub pml_pages: u64,
    /// Exact distinct pages touched this epoch (ground truth; only the
    /// oracle may consume it).
    pub exact_pages: u64,
    /// Whether the bounded log overflowed this epoch.
    pub overflowed: bool,
}

/// Everything the executor observed since the last tick.
#[derive(Clone, Copy, Debug)]
pub struct WssObservation {
    /// Cumulative swap-device counters (the iostat snapshot).
    pub io: IoCounters,
    /// The epoch drain, when epoch tracking is armed on the VM.
    pub epoch: Option<EpochSample>,
}

/// The estimator-specific signal behind a tick, for tracing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimateSignal {
    /// Swap-I/O rate that drove the α/β/τ controller.
    SwapRate {
        /// Combined read+write rate in KB/s.
        kbps: f64,
    },
    /// Dirty-epoch estimate that drove reservation sizing.
    DirtyEpoch {
        /// Estimated bytes touched this epoch.
        est_bytes: u64,
        /// Whether the simulated PML buffer overflowed.
        overflowed: bool,
    },
}

/// One estimator decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimatorTick {
    /// The reservation adjustment to apply.
    pub adjustment: Adjustment,
    /// What the estimator saw (for the trace).
    pub signal: EstimateSignal,
}

/// A pluggable working-set-size estimator (see module docs).
pub trait WssEstimator {
    /// Stable short name, used in traces and reports.
    fn kind(&self) -> &'static str;

    /// Consume one observation. `None` means the estimator is still
    /// priming (e.g. the swap monitor's first window) — the executor
    /// reschedules at [`WssEstimator::priming_interval`] and applies
    /// nothing.
    fn on_tick(
        &mut self,
        now: SimTime,
        obs: &WssObservation,
        current_reservation: u64,
    ) -> Option<EstimatorTick>;

    /// Re-sample delay while priming.
    fn priming_interval(&self) -> SimDuration;

    /// The estimator's current working-set estimate in bytes, when it
    /// has one distinct from the reservation it sized. The swap-I/O
    /// estimator returns `None`: its reservation *is* its estimate
    /// (§IV-D hovers the cgroup limit just above the WSS).
    fn wss_estimate(&self) -> Option<u64>;

    /// Drop sampling history (the VM paused for migration, or resumed on
    /// another host where the swap device binding was replaced).
    fn reset(&mut self);
}

// ---------------------------------------------------------------------
// Swap-I/O estimator (the paper's §IV-D path)
// ---------------------------------------------------------------------

/// [`SwapActivityMonitor`] + [`ReservationController`], behind the trait.
///
/// The arithmetic is exactly the pre-trait sampling chain's: golden
/// traces under the default estimator replay byte-identically.
#[derive(Clone, Debug)]
pub struct SwapIoEstimator {
    monitor: SwapActivityMonitor,
    controller: ReservationController,
}

impl SwapIoEstimator {
    /// Estimator with the given controller parameters.
    pub fn new(params: ControllerParams) -> Self {
        SwapIoEstimator {
            monitor: SwapActivityMonitor::new(),
            controller: ReservationController::new(params),
        }
    }

    /// The underlying controller (tests inspect stability).
    pub fn controller(&self) -> &ReservationController {
        &self.controller
    }
}

impl WssEstimator for SwapIoEstimator {
    fn kind(&self) -> &'static str {
        "swap_io"
    }

    fn on_tick(
        &mut self,
        now: SimTime,
        obs: &WssObservation,
        current_reservation: u64,
    ) -> Option<EstimatorTick> {
        let rate = self.monitor.sample(now, obs.io)?;
        let adjustment = self.controller.on_sample(current_reservation, rate);
        Some(EstimatorTick {
            adjustment,
            signal: EstimateSignal::SwapRate {
                kbps: rate.total_kbps(),
            },
        })
    }

    fn priming_interval(&self) -> SimDuration {
        self.controller.params().fast_interval
    }

    fn wss_estimate(&self) -> Option<u64> {
        None
    }

    fn reset(&mut self) {
        self.monitor.reset();
    }
}

// ---------------------------------------------------------------------
// Simulated-PML estimator
// ---------------------------------------------------------------------

/// Parameters for [`PmlEstimator`] (and [`GroundTruthWss`]).
#[derive(Clone, Copy, Debug)]
pub struct PmlParams {
    /// Fixed sampling epoch (Bitchebe et al. use a constant tick; there
    /// is no fast/slow switch because the signal is never degenerate).
    pub epoch: SimDuration,
    /// Sliding window (in epochs) the estimate is the max over — absorbs
    /// epochs that under-sample a working set the guest cycles through
    /// more slowly than the epoch length.
    pub window: u32,
    /// Reservation headroom numerator: reservation = estimate ×
    /// `headroom_num / headroom_den`, computed as
    /// `pages * (page_size / headroom_den) * headroom_num` so the map is
    /// exactly linear (requires `page_size % headroom_den == 0`).
    pub headroom_num: u64,
    /// Reservation headroom denominator (must divide `page_size`).
    pub headroom_den: u64,
    /// Guest page size in bytes.
    pub page_size: u64,
    /// Reservation floor.
    pub min_bytes: u64,
    /// Reservation ceiling.
    pub max_bytes: u64,
    /// Consecutive in-band epochs required to declare stability.
    pub stable_after: u32,
    /// Stability band half-width as a right-shift of the previous
    /// estimate (4 → ±6.25%). Scale-free, so power-of-two scalings
    /// preserve stability decisions bit-exactly.
    pub band_shift: u32,
}

impl PmlParams {
    /// Defaults: 2 s epochs, 3-epoch window, 5/4 headroom, stability
    /// after 4 in-band epochs at ±6.25%.
    pub fn defaults(page_size: u64, min_bytes: u64, max_bytes: u64) -> Self {
        PmlParams {
            epoch: SimDuration::from_secs(2),
            window: 3,
            headroom_num: 5,
            headroom_den: 4,
            page_size,
            min_bytes,
            max_bytes,
            stable_after: 4,
            band_shift: 4,
        }
    }
}

/// Shared window/stability machinery for the two epoch-fed estimators.
#[derive(Clone, Debug)]
struct EpochWindow {
    params: PmlParams,
    /// Recent per-epoch byte estimates, newest last, at most
    /// `params.window` entries.
    recent: Vec<u64>,
    /// Previous windowed estimate, for the stability band.
    prev_est: Option<u64>,
    streak: u32,
    stable: bool,
}

impl EpochWindow {
    fn new(params: PmlParams) -> Self {
        assert!(params.window >= 1, "window >= 1");
        assert!(params.headroom_den >= 1 && params.headroom_num >= params.headroom_den);
        assert_eq!(
            params.page_size % params.headroom_den,
            0,
            "headroom_den must divide page_size for exactly-linear sizing"
        );
        assert!(params.min_bytes <= params.max_bytes);
        EpochWindow {
            params,
            recent: Vec::new(),
            prev_est: None,
            streak: 0,
            stable: false,
        }
    }

    /// Fold one epoch's page count; returns (windowed estimate bytes,
    /// reservation adjustment).
    fn on_epoch(&mut self, pages: u64) -> (u64, Adjustment) {
        let p = self.params;
        // Exactly linear in `pages`: page_size % headroom_den == 0, so no
        // truncation — power-of-two input scalings scale the output by
        // the same power of two (the metamorphic suite pins this).
        let epoch_bytes = pages * p.page_size;
        if self.recent.len() == p.window as usize {
            self.recent.remove(0);
        }
        self.recent.push(epoch_bytes);
        let est = *self.recent.iter().max().expect("non-empty");
        // Scale-free stability: |est - prev| <= prev >> band_shift for
        // `stable_after` consecutive epochs.
        match self.prev_est {
            Some(prev) if est.abs_diff(prev) <= prev >> p.band_shift => {
                self.streak += 1;
                if self.streak >= p.stable_after {
                    self.stable = true;
                }
            }
            _ => {
                self.streak = 0;
                self.stable = false;
            }
        }
        self.prev_est = Some(est);
        let sized = (est / p.page_size) * (p.page_size / p.headroom_den) * p.headroom_num;
        let adjustment = Adjustment {
            new_reservation: sized.clamp(p.min_bytes, p.max_bytes),
            next_sample_in: p.epoch,
            stable: self.stable,
        };
        (est, adjustment)
    }

    fn reset(&mut self) {
        self.recent.clear();
        self.prev_est = None;
        self.streak = 0;
        self.stable = false;
    }
}

/// Simulated-PML dirty-log estimator (see module docs).
#[derive(Clone, Debug)]
pub struct PmlEstimator {
    win: EpochWindow,
}

impl PmlEstimator {
    /// Estimator with the given parameters.
    pub fn new(params: PmlParams) -> Self {
        PmlEstimator {
            win: EpochWindow::new(params),
        }
    }
}

impl WssEstimator for PmlEstimator {
    fn kind(&self) -> &'static str {
        "pml"
    }

    fn on_tick(
        &mut self,
        _now: SimTime,
        obs: &WssObservation,
        _current_reservation: u64,
    ) -> Option<EstimatorTick> {
        let ep = obs.epoch?;
        let (est_bytes, adjustment) = self.win.on_epoch(ep.pml_pages);
        Some(EstimatorTick {
            adjustment,
            signal: EstimateSignal::DirtyEpoch {
                est_bytes,
                overflowed: ep.overflowed,
            },
        })
    }

    fn priming_interval(&self) -> SimDuration {
        self.win.params.epoch
    }

    fn wss_estimate(&self) -> Option<u64> {
        self.win.prev_est
    }

    fn reset(&mut self) {
        self.win.reset();
    }
}

// ---------------------------------------------------------------------
// Ground-truth oracle (test/bench only)
// ---------------------------------------------------------------------

/// Exact distinct-pages-touched-per-epoch oracle.
///
/// **Test/bench only**: it consumes [`EpochSample::exact_pages`], which
/// no real host can observe. The accuracy harness runs it alongside the
/// production estimators to score their per-epoch error.
#[derive(Clone, Debug)]
pub struct GroundTruthWss {
    win: EpochWindow,
}

impl GroundTruthWss {
    /// Oracle with the given parameters (headroom applies to its
    /// reservation sizing exactly as for [`PmlEstimator`], so sizing
    /// deltas isolate estimation error).
    pub fn new(params: PmlParams) -> Self {
        GroundTruthWss {
            win: EpochWindow::new(params),
        }
    }
}

impl WssEstimator for GroundTruthWss {
    fn kind(&self) -> &'static str {
        "ground_truth"
    }

    fn on_tick(
        &mut self,
        _now: SimTime,
        obs: &WssObservation,
        _current_reservation: u64,
    ) -> Option<EstimatorTick> {
        let ep = obs.epoch?;
        let (est_bytes, adjustment) = self.win.on_epoch(ep.exact_pages);
        Some(EstimatorTick {
            adjustment,
            signal: EstimateSignal::DirtyEpoch {
                est_bytes,
                overflowed: false,
            },
        })
    }

    fn priming_interval(&self) -> SimDuration {
        self.win.params.epoch
    }

    fn wss_estimate(&self) -> Option<u64> {
        self.win.prev_est
    }

    fn reset(&mut self) {
        self.win.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim_core::{GIB, MIB};

    fn obs_epoch(pml: u64, exact: u64, overflowed: bool) -> WssObservation {
        WssObservation {
            io: IoCounters::default(),
            epoch: Some(EpochSample {
                pml_pages: pml,
                exact_pages: exact,
                overflowed,
            }),
        }
    }

    fn pml_params() -> PmlParams {
        PmlParams::defaults(4096, 8 * MIB, 4 * GIB)
    }

    #[test]
    fn pml_primes_until_epochs_flow() {
        let mut e = PmlEstimator::new(pml_params());
        let no_epoch = WssObservation {
            io: IoCounters::default(),
            epoch: None,
        };
        assert!(e.on_tick(SimTime::from_secs(2), &no_epoch, GIB).is_none());
        assert_eq!(e.priming_interval(), SimDuration::from_secs(2));
        assert_eq!(e.wss_estimate(), None);
    }

    #[test]
    fn pml_sizes_reservation_linearly_with_headroom() {
        let mut e = PmlEstimator::new(pml_params());
        let t = e
            .on_tick(SimTime::from_secs(2), &obs_epoch(4096, 4096, false), GIB)
            .unwrap();
        // 4096 pages × 4096 B × 5/4 = 20 MiB.
        assert_eq!(t.adjustment.new_reservation, 20 * MIB);
        assert_eq!(e.wss_estimate(), Some(16 * MIB));
        match t.signal {
            EstimateSignal::DirtyEpoch {
                est_bytes,
                overflowed,
            } => {
                assert_eq!(est_bytes, 16 * MIB);
                assert!(!overflowed);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pml_window_max_rides_out_a_shallow_epoch() {
        let mut e = PmlEstimator::new(pml_params());
        let now = SimTime::from_secs(2);
        e.on_tick(now, &obs_epoch(4096, 4096, false), GIB);
        let t = e.on_tick(now, &obs_epoch(512, 512, false), GIB).unwrap();
        assert_eq!(e.wss_estimate(), Some(4096 * 4096));
        assert_eq!(t.adjustment.new_reservation, 4096 * 4096 / 4 * 5);
    }

    #[test]
    fn pml_stability_declared_after_in_band_epochs() {
        let mut e = PmlEstimator::new(pml_params());
        let now = SimTime::from_secs(2);
        let mut last = None;
        for _ in 0..6 {
            last = e.on_tick(now, &obs_epoch(10_000, 10_000, false), GIB);
        }
        assert!(last.unwrap().adjustment.stable);
        let t = e.on_tick(now, &obs_epoch(40_000, 40_000, false), GIB);
        assert!(!t.unwrap().adjustment.stable, "4x jump breaks the band");
    }

    #[test]
    fn swap_io_matches_raw_monitor_plus_controller() {
        let params = ControllerParams::paper(64 * MIB, 4 * GIB);
        let mut e = SwapIoEstimator::new(params);
        let mut m = SwapActivityMonitor::new();
        let mut c = ReservationController::new(params);
        let snaps = [
            (0u64, IoCounters::default()),
            (
                2,
                IoCounters {
                    read_ops: 4,
                    write_ops: 4,
                    read_bytes: 1 << 20,
                    write_bytes: 1 << 19,
                    busy_nanos: 0,
                },
            ),
            (
                4,
                IoCounters {
                    read_ops: 8,
                    write_ops: 4,
                    read_bytes: 1 << 21,
                    write_bytes: 1 << 19,
                    busy_nanos: 0,
                },
            ),
        ];
        let mut r = GIB;
        for (s, io) in snaps {
            let now = SimTime::from_secs(s);
            let want = m.sample(now, io).map(|rate| c.on_sample(r, rate));
            let got = e.on_tick(
                now,
                &WssObservation {
                    io,
                    epoch: Some(EpochSample {
                        pml_pages: 9999,
                        exact_pages: 9999,
                        overflowed: true,
                    }),
                },
                r,
            );
            assert_eq!(got.map(|t| t.adjustment), want, "at {s}s");
            if let Some(t) = got {
                r = t.adjustment.new_reservation;
            }
        }
        assert_eq!(e.wss_estimate(), None);
    }

    #[test]
    fn oracle_uses_exact_count() {
        let mut o = GroundTruthWss::new(pml_params());
        let t = o
            .on_tick(SimTime::from_secs(2), &obs_epoch(100, 7000, true), GIB)
            .unwrap();
        assert_eq!(o.wss_estimate(), Some(7000 * 4096));
        match t.signal {
            EstimateSignal::DirtyEpoch { est_bytes, .. } => assert_eq!(est_bytes, 7000 * 4096),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reset_clears_window_and_stability() {
        let mut e = PmlEstimator::new(pml_params());
        let now = SimTime::from_secs(2);
        for _ in 0..6 {
            e.on_tick(now, &obs_epoch(10_000, 10_000, false), GIB);
        }
        e.reset();
        assert_eq!(e.wss_estimate(), None);
        let t = e.on_tick(now, &obs_epoch(10, 10, false), GIB).unwrap();
        assert!(!t.adjustment.stable);
        assert_eq!(e.wss_estimate(), Some(10 * 4096));
    }
}
