//! # agile-chaos
//!
//! Deterministic fault injection for the simulated testbed.
//!
//! The paper's Agile design widens a VM's failure domain from one host to
//! many: cold pages live on *intermediate* hosts (VMD servers), so an
//! intermediate-host crash mid-migration is a first-class event the system
//! must survive. This crate turns that question into reproducible
//! experiments: a [`ChaosSchedule`] is a **seeded, pre-compiled list of
//! fault events with absolute simulation times** that the cluster executor
//! replays as ordinary DES events. Faults are therefore part of the
//! deterministic event stream — identical seeds give byte-identical runs,
//! fault included, which is what lets the golden-trace test pin chaos runs
//! down.
//!
//! Two ways to build a schedule:
//!
//! * [`ChaosSchedule::builder`] — explicit, scripted faults ("crash server
//!   1 at t=42s, rejoin at t=55s").
//! * [`ChaosSchedule::generate`] — draw a schedule from a [`ChaosProfile`]
//!   (counts and mean durations) using a labelled RNG stream, for
//!   property-style sweeps over many interleavings.
//!
//! The crate is deliberately sans-everything: no knowledge of the cluster
//! wiring. Targets are named by small indices (server index, host index,
//! migration index) that the executor maps onto its own state.

use agile_sim_core::{SeedSequence, SimDuration, SimTime};

/// One kind of injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// An intermediate (VMD server) host crashes: its DRAM contents are
    /// lost and it stops answering until it rejoins.
    ServerCrash {
        /// Index of the VMD server (executor order).
        server: u32,
    },
    /// A previously-crashed server rejoins, empty. Availability gossip
    /// resumes and clears its suspect mark at the clients.
    ServerRejoin {
        /// Index of the VMD server (executor order).
        server: u32,
    },
    /// A host's NIC degrades to `bw_permille`/1000 of its nominal
    /// bandwidth (0 = full partition: the host is unreachable).
    NicDegrade {
        /// Index of the host (executor order).
        host: u32,
        /// Remaining bandwidth, in thousandths of nominal.
        bw_permille: u32,
    },
    /// The host's NIC returns to nominal bandwidth.
    NicRestore {
        /// Index of the host (executor order).
        host: u32,
    },
    /// A host's local swap device develops a latency spike: every I/O
    /// completion is delayed by `extra_us` microseconds.
    SwapSlow {
        /// Index of the host (executor order).
        host: u32,
        /// Added per-I/O latency, microseconds.
        extra_us: u64,
    },
    /// The host's swap device returns to nominal latency.
    SwapRestore {
        /// Index of the host (executor order).
        host: u32,
    },
    /// The TCP connections of an in-flight migration drop. Before the
    /// destination has resumed this aborts the attempt (rollback + retry
    /// with backoff); after resume the destination keeps running and
    /// demand-pages from the per-VM swap device.
    MigrationConnDrop {
        /// Index of the migration (executor order).
        mig: u32,
    },
}

/// A fault with its absolute injection time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A compiled fault schedule: events sorted by time (ties keep insertion
/// order, so schedules are total orders and replay deterministically).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSchedule {
    events: Vec<FaultEvent>,
}

impl ChaosSchedule {
    /// An empty schedule (injects nothing; a run with an empty schedule is
    /// event-for-event identical to a run without chaos wiring).
    pub fn none() -> Self {
        ChaosSchedule::default()
    }

    /// Start building an explicit schedule.
    pub fn builder() -> ChaosScheduleBuilder {
        ChaosScheduleBuilder::default()
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Draw a schedule from `profile` using the `"chaos"` stream of
    /// `seeds`. Identical `(profile, master seed)` pairs give identical
    /// schedules; categories are drawn in a fixed order so adding events
    /// of one kind never perturbs another kind's draws.
    pub fn generate(profile: &ChaosProfile, seeds: &SeedSequence) -> ChaosSchedule {
        let mut b = ChaosSchedule::builder();
        let horizon_us =
            profile.window_end.as_nanos() / 1_000 - profile.window_start.as_nanos() / 1_000;
        if horizon_us == 0 {
            return b.build();
        }
        let draw_at = |rng: &mut agile_sim_core::DetRng| {
            profile.window_start + SimDuration::from_micros(rng.index(horizon_us))
        };

        let mut rng = seeds.stream("chaos.server_crash");
        for _ in 0..profile.server_crashes {
            let server = rng.index(profile.n_servers.max(1) as u64) as u32;
            let at = draw_at(&mut rng);
            let down_us = rng.exponential((profile.mean_downtime.as_nanos() / 1_000) as f64) as u64;
            b = b.fault(at, FaultKind::ServerCrash { server });
            if profile.rejoin {
                b = b.fault(
                    at + SimDuration::from_micros(down_us.max(1)),
                    FaultKind::ServerRejoin { server },
                );
            }
        }

        let mut rng = seeds.stream("chaos.nic");
        for _ in 0..profile.nic_degradations {
            let host = rng.index(profile.n_hosts.max(1) as u64) as u32;
            let at = draw_at(&mut rng);
            let dur_us =
                rng.exponential((profile.mean_fault_duration.as_nanos() / 1_000) as f64) as u64;
            // Half the degradations are full partitions, half keep 10–50%.
            let bw_permille = if rng.chance(0.5) {
                0
            } else {
                100 + rng.index(400) as u32
            };
            b = b.fault(at, FaultKind::NicDegrade { host, bw_permille });
            b = b.fault(
                at + SimDuration::from_micros(dur_us.max(1)),
                FaultKind::NicRestore { host },
            );
        }

        let mut rng = seeds.stream("chaos.swap");
        for _ in 0..profile.swap_spikes {
            let host = rng.index(profile.n_hosts.max(1) as u64) as u32;
            let at = draw_at(&mut rng);
            let dur_us =
                rng.exponential((profile.mean_fault_duration.as_nanos() / 1_000) as f64) as u64;
            let extra_us = 200 + rng.index(4800);
            b = b.fault(at, FaultKind::SwapSlow { host, extra_us });
            b = b.fault(
                at + SimDuration::from_micros(dur_us.max(1)),
                FaultKind::SwapRestore { host },
            );
        }

        let mut rng = seeds.stream("chaos.conn");
        for _ in 0..profile.conn_drops {
            let at = draw_at(&mut rng);
            b = b.fault(at, FaultKind::MigrationConnDrop { mig: 0 });
        }

        b.build()
    }
}

/// Builder for explicit fault schedules.
#[derive(Clone, Debug, Default)]
pub struct ChaosScheduleBuilder {
    events: Vec<FaultEvent>,
}

impl ChaosScheduleBuilder {
    /// Add one fault at an absolute time.
    pub fn fault(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Convenience: crash `server` at `at` and rejoin it `downtime` later.
    pub fn server_outage(self, server: u32, at: SimTime, downtime: SimDuration) -> Self {
        self.fault(at, FaultKind::ServerCrash { server })
            .fault(at + downtime, FaultKind::ServerRejoin { server })
    }

    /// Convenience: degrade `host`'s NIC for `duration`.
    pub fn nic_outage(
        self,
        host: u32,
        at: SimTime,
        duration: SimDuration,
        bw_permille: u32,
    ) -> Self {
        self.fault(at, FaultKind::NicDegrade { host, bw_permille })
            .fault(at + duration, FaultKind::NicRestore { host })
    }

    /// Convenience: slow `host`'s swap device for `duration`.
    pub fn swap_spike(self, host: u32, at: SimTime, duration: SimDuration, extra_us: u64) -> Self {
        self.fault(at, FaultKind::SwapSlow { host, extra_us })
            .fault(at + duration, FaultKind::SwapRestore { host })
    }

    /// Finish: sort by time, keeping insertion order among ties.
    pub fn build(self) -> ChaosSchedule {
        let mut indexed: Vec<(usize, FaultEvent)> = self.events.into_iter().enumerate().collect();
        indexed.sort_by_key(|(i, ev)| (ev.at, *i));
        ChaosSchedule {
            events: indexed.into_iter().map(|(_, ev)| ev).collect(),
        }
    }
}

/// Parameters for randomly-drawn schedules (property sweeps). Events are
/// drawn uniformly inside `[window_start, window_end)`; durations are
/// exponential around their means.
#[derive(Clone, Copy, Debug)]
pub struct ChaosProfile {
    /// Earliest fault injection time.
    pub window_start: SimTime,
    /// Latest fault injection time (exclusive).
    pub window_end: SimTime,
    /// Number of VMD servers fault targets are drawn from.
    pub n_servers: u32,
    /// Number of hosts NIC/swap fault targets are drawn from.
    pub n_hosts: u32,
    /// Server crash events to draw.
    pub server_crashes: u32,
    /// Whether crashed servers rejoin (after an exponential downtime).
    pub rejoin: bool,
    /// Mean downtime before a crashed server rejoins.
    pub mean_downtime: SimDuration,
    /// NIC degradation/partition episodes to draw.
    pub nic_degradations: u32,
    /// Swap-device latency spike episodes to draw.
    pub swap_spikes: u32,
    /// Migration connection drops to draw.
    pub conn_drops: u32,
    /// Mean duration of NIC and swap episodes.
    pub mean_fault_duration: SimDuration,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            window_start: SimTime::ZERO,
            window_end: SimTime::from_secs(60),
            n_servers: 1,
            n_hosts: 1,
            server_crashes: 0,
            rejoin: true,
            mean_downtime: SimDuration::from_secs(10),
            nic_degradations: 0,
            swap_spikes: 0,
            conn_drops: 0,
            mean_fault_duration: SimDuration::from_secs(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_by_time_stably() {
        let s = ChaosSchedule::builder()
            .fault(SimTime::from_secs(5), FaultKind::ServerCrash { server: 1 })
            .fault(SimTime::from_secs(2), FaultKind::NicRestore { host: 0 })
            .fault(SimTime::from_secs(5), FaultKind::ServerRejoin { server: 1 })
            .build();
        assert_eq!(s.len(), 3);
        assert_eq!(s.events()[0].kind, FaultKind::NicRestore { host: 0 });
        // Ties keep insertion order: crash before rejoin.
        assert_eq!(s.events()[1].kind, FaultKind::ServerCrash { server: 1 });
        assert_eq!(s.events()[2].kind, FaultKind::ServerRejoin { server: 1 });
    }

    #[test]
    fn outage_helpers_pair_up() {
        let s = ChaosSchedule::builder()
            .server_outage(0, SimTime::from_secs(1), SimDuration::from_secs(3))
            .build();
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].at, SimTime::from_secs(1));
        assert_eq!(s.events()[1].at, SimTime::from_secs(4));
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let profile = ChaosProfile {
            n_servers: 3,
            n_hosts: 4,
            server_crashes: 2,
            nic_degradations: 2,
            swap_spikes: 1,
            conn_drops: 1,
            ..ChaosProfile::default()
        };
        let a = ChaosSchedule::generate(&profile, &SeedSequence::new(42));
        let b = ChaosSchedule::generate(&profile, &SeedSequence::new(42));
        assert_eq!(a, b, "same seed, same schedule");
        let c = ChaosSchedule::generate(&profile, &SeedSequence::new(43));
        assert_ne!(a, c, "different seed, different schedule");
        // 2 crash+rejoin pairs, 2 degrade+restore pairs, 1 slow+restore
        // pair, 1 connection drop.
        assert_eq!(a.len(), 2 * 2 + 2 * 2 + 2 + 1);
    }

    #[test]
    fn generated_events_sit_inside_the_window() {
        let profile = ChaosProfile {
            window_start: SimTime::from_secs(10),
            window_end: SimTime::from_secs(20),
            n_servers: 2,
            n_hosts: 2,
            server_crashes: 5,
            rejoin: false,
            nic_degradations: 0,
            swap_spikes: 0,
            conn_drops: 0,
            ..ChaosProfile::default()
        };
        let s = ChaosSchedule::generate(&profile, &SeedSequence::new(7));
        assert_eq!(s.len(), 5);
        for ev in s.events() {
            assert!(ev.at >= SimTime::from_secs(10));
            assert!(ev.at < SimTime::from_secs(20));
            assert!(matches!(ev.kind, FaultKind::ServerCrash { .. }));
        }
    }

    #[test]
    fn empty_profile_injects_nothing() {
        let s = ChaosSchedule::generate(&ChaosProfile::default(), &SeedSequence::new(1));
        assert!(s.is_empty());
        assert!(ChaosSchedule::none().is_empty());
    }
}
