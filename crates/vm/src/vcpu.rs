//! vCPU processor-sharing model.
//!
//! Each VM in the paper's testbed has 2 vCPUs. Guest work (serving a YCSB
//! request, executing an OLTP transaction) needs CPU time; when more tasks
//! are runnable than there are vCPUs, they share the cores. We use the
//! processor-sharing approximation standard in queueing-network simulators:
//! a burst of `c` CPU-seconds submitted while `r` tasks are runnable on
//! `n` vCPUs takes `c * max(1, r/n)` wall-clock seconds.
//!
//! The approximation freezes the contention factor at submission time
//! (rather than integrating over the burst), which is accurate when bursts
//! are short relative to load changes — true here: request service times
//! are sub-millisecond while load shifts over seconds.

use agile_sim_core::SimDuration;

/// The vCPUs of one VM.
#[derive(Clone, Copy, Debug)]
pub struct VcpuSet {
    n_vcpus: u32,
    runnable: u32,
    /// Slowdown multiplier applied on top of contention (used to model the
    /// whole-VM pause during migration downtime: infinity-like factors are
    /// expressed by the caller suspending dispatch instead).
    speed: f64,
}

impl VcpuSet {
    /// A VM with `n_vcpus` virtual CPUs.
    pub fn new(n_vcpus: u32) -> Self {
        assert!(n_vcpus > 0);
        VcpuSet {
            n_vcpus,
            runnable: 0,
            speed: 1.0,
        }
    }

    /// Number of vCPUs.
    pub fn n_vcpus(&self) -> u32 {
        self.n_vcpus
    }

    /// Tasks currently on-CPU or waiting for CPU.
    pub fn runnable(&self) -> u32 {
        self.runnable
    }

    /// Set a global execution speed factor in `(0, 1]` (e.g. SDPS-style
    /// vCPU slowdown; 1.0 = full speed).
    pub fn set_speed(&mut self, speed: f64) {
        assert!(speed > 0.0 && speed <= 1.0);
        self.speed = speed;
    }

    /// Current contention factor: how much longer a burst takes than its
    /// nominal CPU time.
    pub fn contention(&self) -> f64 {
        (self.runnable.max(1) as f64 / self.n_vcpus as f64).max(1.0) / self.speed
    }

    /// A task becomes runnable and submits a CPU burst of `cpu_time`;
    /// returns the wall-clock duration until the burst retires. The caller
    /// must pair this with [`VcpuSet::finish`] when the burst completes.
    pub fn begin(&mut self, cpu_time: SimDuration) -> SimDuration {
        self.runnable += 1;
        let factor = self.contention();
        SimDuration::from_secs_f64(cpu_time.as_secs_f64() * factor)
    }

    /// A task's burst retired (or the task blocked on I/O).
    pub fn finish(&mut self) {
        debug_assert!(self.runnable > 0, "finish without begin");
        self.runnable = self.runnable.saturating_sub(1);
    }

    /// Forget all runnable tasks (the VM was suspended; in-flight bursts
    /// are abandoned and re-issued at the destination).
    pub fn reset(&mut self) {
        self.runnable = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_burst_runs_at_native_speed() {
        let mut v = VcpuSet::new(2);
        let d = v.begin(SimDuration::from_micros(100));
        assert_eq!(d, SimDuration::from_micros(100));
        v.finish();
        assert_eq!(v.runnable(), 0);
    }

    #[test]
    fn two_tasks_on_two_vcpus_no_slowdown() {
        let mut v = VcpuSet::new(2);
        let _ = v.begin(SimDuration::from_micros(100));
        let d2 = v.begin(SimDuration::from_micros(100));
        assert_eq!(d2, SimDuration::from_micros(100));
    }

    #[test]
    fn oversubscription_slows_down_proportionally() {
        let mut v = VcpuSet::new(2);
        for _ in 0..4 {
            v.begin(SimDuration::from_micros(100));
        }
        // 5th task sees 5 runnable on 2 vCPUs → 2.5x.
        let d = v.begin(SimDuration::from_micros(100));
        assert_eq!(d, SimDuration::from_micros(250));
    }

    #[test]
    fn finish_releases_contention() {
        let mut v = VcpuSet::new(1);
        v.begin(SimDuration::from_micros(100));
        v.begin(SimDuration::from_micros(100));
        v.finish();
        v.finish();
        let d = v.begin(SimDuration::from_micros(100));
        assert_eq!(d, SimDuration::from_micros(100));
    }

    #[test]
    fn speed_factor_scales_bursts() {
        let mut v = VcpuSet::new(2);
        v.set_speed(0.5);
        let d = v.begin(SimDuration::from_micros(100));
        assert_eq!(d, SimDuration::from_micros(200));
    }

    #[test]
    #[should_panic]
    fn zero_vcpus_rejected() {
        let _ = VcpuSet::new(0);
    }
}
