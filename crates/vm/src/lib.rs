//! # agile-vm
//!
//! The virtual-machine model of the Agile live-migration reproduction:
//!
//! * [`Vm`] — identity + configuration + lifecycle state machine enforcing
//!   the legal live-migration transitions (running → pre-copy → suspended →
//!   post-copy → running-at-destination), wrapping the VM's
//!   [`agile_memory::VmMemory`] and [`VcpuSet`].
//! * [`VcpuSet`] — processor-sharing model of the VM's vCPUs; guest request
//!   service times inflate under CPU oversubscription.
//! * [`GuestLayout`] — stable mapping from application objects to guest
//!   page frames (OS region + named dataset regions).

pub mod layout;
pub mod machine;
pub mod vcpu;

pub use layout::{GuestLayout, PageRange};
pub use machine::{HostId, Vm, VmConfig, VmId, VmState};
pub use vcpu::VcpuSet;
