//! The virtual machine: identity, configuration, lifecycle, and guest
//! address-space layout.
//!
//! A `Vm` bundles the pieces the rest of the system manipulates: its
//! [`VmMemory`] (the KVM/QEMU process's pages under a cgroup reservation),
//! its [`VcpuSet`], and a lifecycle state machine that enforces the legal
//! transitions of live migration (running → pre-copy → suspended →
//! running-at-destination; the source side ends at `Terminated`).

use agile_memory::{VmMemory, VmMemoryConfig};
use agile_sim_core::GIB;

use crate::layout::GuestLayout;
use crate::vcpu::VcpuSet;

/// Identifies a VM within the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VmId(pub u32);

/// Identifies a host within the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// Static configuration of a VM.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Guest physical memory in bytes.
    pub mem_bytes: u64,
    /// Page size (4096 in the paper).
    pub page_size: u64,
    /// Number of vCPUs (2 in the paper's experiments).
    pub vcpus: u32,
    /// Initial cgroup memory reservation in bytes.
    pub reservation_bytes: u64,
    /// Bytes the guest OS itself keeps resident (kernel, daemons); the
    /// paper's guests idle at a few hundred MB.
    pub guest_os_bytes: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mem_bytes: 10 * GIB,
            page_size: 4096,
            vcpus: 2,
            reservation_bytes: 10 * GIB,
            guest_os_bytes: 300 * 1024 * 1024,
        }
    }
}

/// Lifecycle of a VM as migration sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmState {
    /// Executing normally on `host`.
    Running {
        /// Current host.
        host: HostId,
    },
    /// Live pre-copy in progress; still executing on the source.
    PreCopy {
        /// Source host.
        source: HostId,
        /// Destination host.
        dest: HostId,
    },
    /// Suspended for the CPU-state handoff (the downtime window).
    Suspended {
        /// Source host.
        source: HostId,
        /// Destination host.
        dest: HostId,
    },
    /// Running at the destination while post-copy backfill continues.
    PostCopy {
        /// Source host (still serving pages).
        source: HostId,
        /// Destination host (where the vCPUs now run).
        dest: HostId,
    },
    /// Migration complete; source state released.
    Terminated,
}

impl VmState {
    /// The host whose vCPUs are (or would be) executing the guest.
    pub fn execution_host(&self) -> Option<HostId> {
        match *self {
            VmState::Running { host } => Some(host),
            VmState::PreCopy { source, .. } | VmState::Suspended { source, .. } => Some(source),
            VmState::PostCopy { dest, .. } => Some(dest),
            VmState::Terminated => None,
        }
    }

    /// True while the guest can execute instructions.
    pub fn can_execute(&self) -> bool {
        !matches!(*self, VmState::Suspended { .. } | VmState::Terminated)
    }
}

/// A virtual machine.
#[derive(Clone, Debug)]
pub struct Vm {
    id: VmId,
    config: VmConfig,
    state: VmState,
    memory: VmMemory,
    vcpus: VcpuSet,
    layout: GuestLayout,
}

impl Vm {
    /// Create a VM in `Running{host}` state with unpopulated memory.
    pub fn new(id: VmId, host: HostId, config: VmConfig) -> Self {
        let mem_cfg = VmMemoryConfig::from_bytes(
            config.mem_bytes,
            config.page_size,
            config.reservation_bytes,
        );
        let layout = GuestLayout::new(mem_cfg.pages, config.guest_os_bytes / config.page_size);
        Vm {
            id,
            config,
            state: VmState::Running { host },
            memory: VmMemory::new(mem_cfg),
            vcpus: VcpuSet::new(config.vcpus),
            layout,
        }
    }

    /// VM id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Static configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Guest memory (host-side view).
    pub fn memory(&self) -> &VmMemory {
        &self.memory
    }

    /// Guest memory, mutable.
    pub fn memory_mut(&mut self) -> &mut VmMemory {
        &mut self.memory
    }

    /// Replace the memory image wholesale (used when the destination
    /// KVM/QEMU process takes over: it has its own `VmMemory` built during
    /// the transfer). Returns the previous image — the source copy, which
    /// the Migration Manager keeps serving pages from until push completes.
    pub fn replace_memory(&mut self, memory: VmMemory) -> VmMemory {
        std::mem::replace(&mut self.memory, memory)
    }

    /// vCPUs.
    pub fn vcpus(&self) -> &VcpuSet {
        &self.vcpus
    }

    /// vCPUs, mutable.
    pub fn vcpus_mut(&mut self) -> &mut VcpuSet {
        &mut self.vcpus
    }

    /// Guest address-space layout.
    pub fn layout(&self) -> &GuestLayout {
        &self.layout
    }

    /// Layout, mutable (workload attaches its dataset region).
    pub fn layout_mut(&mut self) -> &mut GuestLayout {
        &mut self.layout
    }

    // -------------------------- state machine --------------------------

    /// Begin a live pre-copy round toward `dest`.
    pub fn begin_precopy(&mut self, dest: HostId) {
        match self.state {
            VmState::Running { host } => {
                assert_ne!(host, dest, "migration to the same host");
                self.state = VmState::PreCopy { source: host, dest };
            }
            other => panic!("begin_precopy from {other:?}"),
        }
    }

    /// Suspend for the CPU-state handoff.
    pub fn suspend(&mut self) {
        match self.state {
            VmState::PreCopy { source, dest } => {
                self.state = VmState::Suspended { source, dest };
            }
            // Post-copy suspends straight from Running.
            VmState::Running { host } => panic!(
                "suspend of a running VM on {host:?} requires a destination; \
                 use suspend_for(dest)"
            ),
            other => panic!("suspend from {other:?}"),
        }
    }

    /// Suspend a running VM directly (pure post-copy skips the live round).
    pub fn suspend_for(&mut self, dest: HostId) {
        match self.state {
            VmState::Running { host } => {
                assert_ne!(host, dest);
                self.state = VmState::Suspended { source: host, dest };
            }
            other => panic!("suspend_for from {other:?}"),
        }
    }

    /// Resume execution at the destination (post-copy phase starts).
    pub fn resume_at_destination(&mut self) {
        match self.state {
            VmState::Suspended { source, dest } => {
                self.state = VmState::PostCopy { source, dest };
            }
            other => panic!("resume_at_destination from {other:?}"),
        }
    }

    /// All state transferred: the VM now simply runs at the destination and
    /// the source's copy is gone.
    pub fn complete_migration(&mut self) {
        match self.state {
            VmState::PostCopy { dest, .. } => {
                self.state = VmState::Running { host: dest };
            }
            // Pure pre-copy completes out of Suspended (stop-and-copy ends
            // with the resume at the destination).
            VmState::Suspended { dest, .. } => {
                self.state = VmState::Running { host: dest };
            }
            other => panic!("complete_migration from {other:?}"),
        }
    }

    /// Abort bookkeeping for tests / failure injection: fall back to
    /// running at the source.
    pub fn cancel_migration(&mut self) {
        match self.state {
            VmState::PreCopy { source, .. } | VmState::Suspended { source, .. } => {
                self.state = VmState::Running { host: source };
            }
            other => panic!("cancel_migration from {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_vm() -> Vm {
        Vm::new(
            VmId(0),
            HostId(0),
            VmConfig {
                mem_bytes: 64 * 4096,
                page_size: 4096,
                vcpus: 2,
                reservation_bytes: 32 * 4096,
                guest_os_bytes: 8 * 4096,
            },
        )
    }

    #[test]
    fn construction() {
        let vm = small_vm();
        assert_eq!(vm.memory().pages(), 64);
        assert_eq!(vm.memory().limit_pages(), 32);
        assert_eq!(vm.vcpus().n_vcpus(), 2);
        assert_eq!(vm.state(), VmState::Running { host: HostId(0) });
        assert_eq!(vm.state().execution_host(), Some(HostId(0)));
    }

    #[test]
    fn agile_and_precopy_lifecycle() {
        let mut vm = small_vm();
        vm.begin_precopy(HostId(1));
        assert!(vm.state().can_execute());
        vm.suspend();
        assert!(!vm.state().can_execute());
        assert_eq!(vm.state().execution_host(), Some(HostId(0)));
        vm.resume_at_destination();
        assert_eq!(vm.state().execution_host(), Some(HostId(1)));
        assert!(vm.state().can_execute());
        vm.complete_migration();
        assert_eq!(vm.state(), VmState::Running { host: HostId(1) });
    }

    #[test]
    fn postcopy_lifecycle_skips_live_round() {
        let mut vm = small_vm();
        vm.suspend_for(HostId(1));
        vm.resume_at_destination();
        vm.complete_migration();
        assert_eq!(vm.state(), VmState::Running { host: HostId(1) });
    }

    #[test]
    fn pure_precopy_completes_from_suspended() {
        let mut vm = small_vm();
        vm.begin_precopy(HostId(1));
        vm.suspend();
        vm.complete_migration();
        assert_eq!(vm.state(), VmState::Running { host: HostId(1) });
    }

    #[test]
    fn cancel_returns_to_source() {
        let mut vm = small_vm();
        vm.begin_precopy(HostId(1));
        vm.cancel_migration();
        assert_eq!(vm.state(), VmState::Running { host: HostId(0) });
    }

    #[test]
    #[should_panic(expected = "migration to the same host")]
    fn self_migration_rejected() {
        let mut vm = small_vm();
        vm.begin_precopy(HostId(0));
    }

    #[test]
    #[should_panic(expected = "begin_precopy from")]
    fn double_migration_rejected() {
        let mut vm = small_vm();
        vm.begin_precopy(HostId(1));
        vm.begin_precopy(HostId(1));
    }
}
