//! Guest physical address-space layout.
//!
//! Workloads need a stable mapping from application objects (Redis keys,
//! MySQL rows) to guest page frames. The layout reserves a low region for
//! the guest OS (kernel text/data, daemons — pages the guest touches
//! regularly regardless of workload) and carves named regions for
//! application datasets out of the remainder.

/// A contiguous range of guest page frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageRange {
    /// First page frame number of the range.
    pub start: u32,
    /// Number of pages.
    pub len: u32,
}

impl PageRange {
    /// One past the last pfn.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// The `i`-th page of the range (panics if out of bounds).
    pub fn page(&self, i: u32) -> u32 {
        assert!(i < self.len, "page {i} out of range of {self:?}");
        self.start + i
    }

    /// True if `pfn` lies inside the range.
    pub fn contains(&self, pfn: u32) -> bool {
        pfn >= self.start && pfn < self.end()
    }
}

/// Layout of one VM's guest physical memory.
#[derive(Clone, Debug)]
pub struct GuestLayout {
    total_pages: u32,
    os: PageRange,
    regions: Vec<(String, PageRange)>,
    next_free: u32,
}

impl GuestLayout {
    /// Create a layout with the guest OS occupying the first
    /// `os_pages` frames.
    pub fn new(total_pages: u32, os_pages: u64) -> Self {
        let os_pages = os_pages.min(total_pages as u64) as u32;
        GuestLayout {
            total_pages,
            os: PageRange {
                start: 0,
                len: os_pages,
            },
            regions: Vec::new(),
            next_free: os_pages,
        }
    }

    /// Total guest pages.
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// The guest OS region.
    pub fn os_region(&self) -> PageRange {
        self.os
    }

    /// Pages not yet assigned to any region.
    pub fn free_pages(&self) -> u32 {
        self.total_pages - self.next_free
    }

    /// Allocate a named region of `pages` frames (e.g. "redis-dataset").
    /// Panics if the guest is out of memory — the scenario sized the VM
    /// wrong.
    pub fn alloc_region(&mut self, name: &str, pages: u32) -> PageRange {
        assert!(
            self.next_free + pages <= self.total_pages,
            "guest OOM: {} pages requested for {name}, {} free",
            pages,
            self.free_pages()
        );
        let r = PageRange {
            start: self.next_free,
            len: pages,
        };
        self.next_free += pages;
        self.regions.push((name.to_string(), r));
        r
    }

    /// Find a region by name.
    pub fn region(&self, name: &str) -> Option<PageRange> {
        self.regions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
    }

    /// All named regions in allocation order.
    pub fn regions(&self) -> impl Iterator<Item = (&str, PageRange)> + '_ {
        self.regions.iter().map(|(n, r)| (n.as_str(), *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_region_comes_first() {
        let l = GuestLayout::new(1000, 100);
        assert_eq!(l.os_region(), PageRange { start: 0, len: 100 });
        assert_eq!(l.free_pages(), 900);
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let mut l = GuestLayout::new(1000, 100);
        let a = l.alloc_region("a", 200);
        let b = l.alloc_region("b", 300);
        assert_eq!(
            a,
            PageRange {
                start: 100,
                len: 200
            }
        );
        assert_eq!(
            b,
            PageRange {
                start: 300,
                len: 300
            }
        );
        assert_eq!(l.free_pages(), 400);
        assert_eq!(l.region("a"), Some(a));
        assert_eq!(l.region("nope"), None);
        assert_eq!(l.regions().count(), 2);
    }

    #[test]
    fn page_indexing() {
        let r = PageRange { start: 10, len: 5 };
        assert_eq!(r.page(0), 10);
        assert_eq!(r.page(4), 14);
        assert!(r.contains(12));
        assert!(!r.contains(15));
        assert_eq!(r.end(), 15);
    }

    #[test]
    #[should_panic(expected = "guest OOM")]
    fn overallocation_panics() {
        let mut l = GuestLayout::new(100, 10);
        l.alloc_region("too-big", 91);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_out_of_range_panics() {
        let r = PageRange { start: 0, len: 1 };
        r.page(1);
    }

    #[test]
    fn os_pages_clamped_to_total() {
        let l = GuestLayout::new(10, 100);
        assert_eq!(l.os_region().len, 10);
        assert_eq!(l.free_pages(), 0);
    }
}
