//! Property tests: VMD store consistency under arbitrary operation
//! sequences, namespace isolation, and placement stability.

use agile_vmd::{ClientId, ClientMsg, ServerId, VmdClient, VmdDirectory, VmdServer};
use proptest::prelude::*;
use std::collections::HashMap;

/// Deliver every outbox message to its server and feed replies back;
/// returns completed read results keyed by req id.
fn pump(
    client: &mut VmdClient,
    servers: &mut [VmdServer],
) -> HashMap<u64, u32> {
    let mut reads = HashMap::new();
    loop {
        let msgs: Vec<(ServerId, ClientMsg)> = client.drain_outbox().collect();
        if msgs.is_empty() {
            break;
        }
        for (sid, msg) in msgs {
            let reply = servers[sid.0 as usize].handle(msg);
            if let Some(r) = reply.msg {
                if let Some(agile_vmd::VmdCompletion::ReadDone { req, version }) =
                    client.on_server_msg(sid, r)
                {
                    reads.insert(req, version);
                }
            }
        }
    }
    reads
}

proptest! {
    /// Whatever interleaving of writes/overwrites across namespaces, a
    /// read always returns the latest version written to that (ns, slot).
    #[test]
    fn store_is_linearizable_per_slot(
        ops in proptest::collection::vec((0u32..3, 0u32..16, 1u32..1000), 1..100)
    ) {
        let mut servers: Vec<VmdServer> =
            (0..3).map(|i| VmdServer::new(ServerId(i), 10_000, 0)).collect();
        let mut client = VmdClient::new(
            ClientId(0),
            servers.iter().map(|s| (s.id(), s.free_pages())),
        );
        let mut dir = VmdDirectory::new();
        let namespaces: Vec<_> = (0..3).map(|_| dir.create_namespace()).collect();
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        let mut req = 0u64;
        for (ns_i, slot, version) in ops {
            let ns = namespaces[ns_i as usize];
            client.write(&mut dir, ns, slot, version, req);
            req += 1;
            model.insert((ns_i, slot), version);
            pump(&mut client, &mut servers);
        }
        // Read everything back.
        for (&(ns_i, slot), &version) in &model {
            let ns = namespaces[ns_i as usize];
            let issue = client.read(&dir, ns, slot, req);
            match issue {
                agile_vmd::ReadIssue::Local { version: v } => prop_assert_eq!(v, version),
                agile_vmd::ReadIssue::Sent => {
                    let reads = pump(&mut client, &mut servers);
                    prop_assert_eq!(reads.get(&req), Some(&version));
                }
            }
            req += 1;
        }
    }

    /// Placement is stable (overwrites stay on the original server) and
    /// server accounting matches the number of distinct slots written.
    #[test]
    fn placement_stable_and_accounting_exact(
        slots in proptest::collection::vec(0u32..32, 1..80)
    ) {
        let mut servers: Vec<VmdServer> =
            (0..4).map(|i| VmdServer::new(ServerId(i), 1_000, 0)).collect();
        let mut client = VmdClient::new(
            ClientId(0),
            servers.iter().map(|s| (s.id(), s.free_pages())),
        );
        let mut dir = VmdDirectory::new();
        let ns = dir.create_namespace();
        let mut first_placement: HashMap<u32, ServerId> = HashMap::new();
        for (i, &slot) in slots.iter().enumerate() {
            client.write(&mut dir, ns, slot, i as u32, i as u64);
            let placed = dir.lookup(ns, slot).expect("placed on write");
            if let Some(prev) = first_placement.get(&slot) {
                prop_assert_eq!(*prev, placed, "slot {} moved servers", slot);
            } else {
                first_placement.insert(slot, placed);
            }
            pump(&mut client, &mut servers);
        }
        let distinct: std::collections::BTreeSet<u32> = slots.iter().copied().collect();
        let stored: u64 = servers.iter().map(|s| s.stored_pages()).sum();
        prop_assert_eq!(stored, distinct.len() as u64);
        prop_assert_eq!(dir.placed_slots(), distinct.len());
    }
}
