//! Randomized tests: VMD store consistency under arbitrary operation
//! sequences, namespace isolation, and placement stability, driven by the
//! deterministic simulation RNG (fixed seeds, so failures reproduce).

use agile_sim_core::DetRng;
use agile_vmd::{ClientId, ClientMsg, ServerId, VmdClient, VmdDirectory, VmdServer};
use std::collections::HashMap;

/// Deliver every outbox message to its server and feed replies back;
/// returns completed read results keyed by req id.
fn pump(client: &mut VmdClient, servers: &mut [VmdServer]) -> HashMap<u64, u32> {
    let mut reads = HashMap::new();
    loop {
        let msgs: Vec<(ServerId, ClientMsg)> = client.drain_outbox().collect();
        if msgs.is_empty() {
            break;
        }
        for (sid, msg) in msgs {
            let reply = servers[sid.0 as usize].handle(msg);
            if let Some(r) = reply.msg {
                if let Some(agile_vmd::VmdCompletion::ReadDone { req, version }) =
                    client.on_server_msg(sid, r)
                {
                    reads.insert(req, version);
                }
            }
        }
    }
    reads
}

/// Whatever interleaving of writes/overwrites across namespaces, a read
/// always returns the latest version written to that (ns, slot).
#[test]
fn store_is_linearizable_per_slot() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0xd1d * 3 + case);
        let n_ops = 1 + rng.index(100) as usize;
        let mut servers: Vec<VmdServer> = (0..3)
            .map(|i| VmdServer::new(ServerId(i), 10_000, 0))
            .collect();
        let mut client = VmdClient::new(
            ClientId(0),
            servers.iter().map(|s| (s.id(), s.free_pages())),
        );
        let mut dir = VmdDirectory::new();
        let namespaces: Vec<_> = (0..3).map(|_| dir.create_namespace()).collect();
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        let mut req = 0u64;
        for _ in 0..n_ops {
            let ns_i = rng.index(3) as u32;
            let slot = rng.index(16) as u32;
            let version = 1 + rng.index(999) as u32;
            let ns = namespaces[ns_i as usize];
            client.write(&mut dir, ns, slot, version, req);
            req += 1;
            model.insert((ns_i, slot), version);
            pump(&mut client, &mut servers);
        }
        // Read everything back (BTreeMap-like order via sorted keys for
        // reproducible failure messages).
        let mut keys: Vec<(u32, u32)> = model.keys().copied().collect();
        keys.sort_unstable();
        for (ns_i, slot) in keys {
            let version = model[&(ns_i, slot)];
            let ns = namespaces[ns_i as usize];
            let issue = client.read(&dir, ns, slot, req);
            match issue {
                agile_vmd::ReadIssue::Local { version: v } => {
                    assert_eq!(v, version, "case {case}")
                }
                agile_vmd::ReadIssue::Sent => {
                    let reads = pump(&mut client, &mut servers);
                    assert_eq!(reads.get(&req), Some(&version), "case {case}");
                }
                agile_vmd::ReadIssue::Failed(err) => {
                    panic!("case {case}: read of written slot failed: {err:?}")
                }
            }
            req += 1;
        }
    }
}

/// Placement is stable (overwrites stay on the original server) and
/// server accounting matches the number of distinct slots written.
#[test]
fn placement_stable_and_accounting_exact() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0xd2d * 5 + case);
        let n_slots = 1 + rng.index(80) as usize;
        let slots: Vec<u32> = (0..n_slots).map(|_| rng.index(32) as u32).collect();
        let mut servers: Vec<VmdServer> = (0..4)
            .map(|i| VmdServer::new(ServerId(i), 1_000, 0))
            .collect();
        let mut client = VmdClient::new(
            ClientId(0),
            servers.iter().map(|s| (s.id(), s.free_pages())),
        );
        let mut dir = VmdDirectory::new();
        let ns = dir.create_namespace();
        let mut first_placement: HashMap<u32, ServerId> = HashMap::new();
        for (i, &slot) in slots.iter().enumerate() {
            client.write(&mut dir, ns, slot, i as u32, i as u64);
            let placed = dir.lookup(ns, slot).expect("placed on write");
            if let Some(prev) = first_placement.get(&slot) {
                assert_eq!(*prev, placed, "case {case}: slot {slot} moved servers");
            } else {
                first_placement.insert(slot, placed);
            }
            pump(&mut client, &mut servers);
        }
        let distinct: std::collections::BTreeSet<u32> = slots.iter().copied().collect();
        let stored: u64 = servers.iter().map(|s| s.stored_pages()).sum();
        assert_eq!(stored, distinct.len() as u64, "case {case}");
        assert_eq!(dir.placed_slots(), distinct.len(), "case {case}");
    }
}
