//! VMD wire protocol.
//!
//! Clients (on source/destination hosts) and servers (on intermediate
//! hosts) exchange four message types over TCP (§IV-A of the paper). The
//! simulation sends these as network segments whose sizes include a fixed
//! per-message header, so VMD traffic competes for NIC bandwidth exactly
//! like any other connection.

/// Identifies a VMD client module instance (one per participating host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

/// Identifies a VMD server module instance (one per intermediate host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServerId(pub u32);

/// Identifies a per-VM swap namespace (one block device, e.g. `/dev/blk1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NamespaceId(pub u32);

/// Protocol header bytes added to every message on the wire.
pub const MSG_HEADER_BYTES: u64 = 64;

/// A protocol-level failure, carried as data instead of a panic so faults
/// stay inside the simulation (a crashed intermediate host must degrade
/// the VM, not abort the simulator).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmdError {
    /// Read of a slot this server has never stored (or lost in a crash).
    UnwrittenSlot {
        /// Namespace of the offending read.
        ns: NamespaceId,
        /// Slot within the namespace.
        slot: u32,
    },
    /// Write rejected: both the DRAM and disk tiers are full.
    OutOfCapacity {
        /// Namespace of the rejected write.
        ns: NamespaceId,
        /// Slot within the namespace.
        slot: u32,
    },
    /// Every replica of the slot is crashed or has lost the page; the data
    /// is gone (possible only below replication factor 2).
    LostSlot {
        /// Namespace of the lost slot.
        ns: NamespaceId,
        /// Slot within the namespace.
        slot: u32,
    },
}

/// A message from a client to a server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientMsg {
    /// Read the page at `(ns, slot)`.
    ReadReq {
        /// Requesting client (for the reply).
        from: ClientId,
        /// Namespace being read.
        ns: NamespaceId,
        /// Slot within the namespace.
        slot: u32,
        /// Client-chosen request id, echoed in the response.
        req: u64,
    },
    /// Store a page at `(ns, slot)`. `version` stands in for the 4 KB of
    /// payload (the simulation tracks content identity, not content).
    WriteReq {
        /// Writing client (for the ack).
        from: ClientId,
        /// Namespace being written.
        ns: NamespaceId,
        /// Slot within the namespace.
        slot: u32,
        /// Content version written.
        version: u32,
        /// Client-chosen request id, echoed in the ack.
        req: u64,
        /// Fork reference count the stored copy must carry: the number of
        /// clone namespaces still sharing this master page. Zero for every
        /// ordinary write; nonzero only when repair or relocation re-copies
        /// a forked master's page, so the new copy lands with the exact
        /// count instead of losing it (the directory is authoritative, the
        /// header field keeps every server's mirror exact).
        rc: u16,
    },
    /// Release a slot (namespace deletion / slot free). A server holding
    /// the page with a nonzero fork refcount defers the release: it marks
    /// the page owner-freed and drops it only when the last
    /// [`ClientMsg::DropRef`] arrives.
    Free {
        /// Namespace.
        ns: NamespaceId,
        /// Slot to release.
        slot: u32,
    },
    /// A namespace was forked ([`crate::VmdDirectory::fork_namespace`]):
    /// bump the fork refcount of every page this server stores under the
    /// master namespace. Broadcast to each server holding at least one of
    /// the master's pages at fork time.
    NsFork {
        /// The sealed master namespace whose pages gained a sharer.
        master: NamespaceId,
    },
    /// A clone namespace stopped sharing one master page (copy-on-write
    /// break, clone purge, or slot discard): decrement the page's fork
    /// refcount. A count reaching zero on an owner-freed page releases the
    /// page for real.
    DropRef {
        /// The master namespace that owns the shared page.
        ns: NamespaceId,
        /// Slot within the master namespace.
        slot: u32,
    },
}

impl ClientMsg {
    /// Bytes this message occupies on the wire, given the page size.
    pub fn wire_bytes(&self, page_size: u64) -> u64 {
        match self {
            ClientMsg::ReadReq { .. }
            | ClientMsg::Free { .. }
            | ClientMsg::NsFork { .. }
            | ClientMsg::DropRef { .. } => MSG_HEADER_BYTES,
            ClientMsg::WriteReq { .. } => MSG_HEADER_BYTES + page_size,
        }
    }
}

/// A message from a server back to a client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServerMsg {
    /// Page content for a [`ClientMsg::ReadReq`].
    ReadResp {
        /// Echoed request id.
        req: u64,
        /// Content version stored at the slot.
        version: u32,
        /// Server's current free capacity, pages (availability gossip).
        free_pages: u64,
    },
    /// Acknowledgement of a [`ClientMsg::WriteReq`].
    WriteAck {
        /// Echoed request id.
        req: u64,
        /// Server's current free capacity, pages.
        free_pages: u64,
    },
    /// Unsolicited periodic availability report (§IV-A: "Each VMD server
    /// periodically updates the VMD clients about the availability of
    /// memory").
    Availability {
        /// Reporting server.
        server: ServerId,
        /// Free leased DRAM capacity, pages.
        free_pages: u64,
        /// Free capacity below the DRAM head tier, pages (the headroom a
        /// write would spill into when `free_pages` is zero). Clients use
        /// this to keep spill-capable servers in the placement ring.
        spill_free_pages: u64,
    },
    /// Lease-change notification, pushed on the server's behalf by the
    /// pool manager when the donor host resizes its contribution, so
    /// clients stop placing onto a shrinking server *before* the next
    /// periodic gossip round.
    LeaseUpdate {
        /// Reporting server.
        server: ServerId,
        /// New contribution lease, pages.
        lease_pages: u64,
        /// Free leased capacity, pages.
        free_pages: u64,
    },
    /// Negative acknowledgement: the request could not be served. Sent
    /// instead of [`ServerMsg::ReadResp`]/[`ServerMsg::WriteAck`] so the
    /// client can fail over to another replica or report the loss.
    Nak {
        /// Echoed request id.
        req: u64,
        /// Why the request failed.
        err: VmdError,
        /// Server's current free capacity, pages.
        free_pages: u64,
        /// Free spill-tier capacity, pages (see [`ServerMsg::Availability`]).
        spill_free_pages: u64,
    },
}

impl ServerMsg {
    /// Bytes this message occupies on the wire, given the page size.
    pub fn wire_bytes(&self, page_size: u64) -> u64 {
        match self {
            ServerMsg::ReadResp { .. } => MSG_HEADER_BYTES + page_size,
            ServerMsg::WriteAck { .. }
            | ServerMsg::Availability { .. }
            | ServerMsg::LeaseUpdate { .. }
            | ServerMsg::Nak { .. } => MSG_HEADER_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let rr = ClientMsg::ReadReq {
            from: ClientId(0),
            ns: NamespaceId(1),
            slot: 2,
            req: 3,
        };
        assert_eq!(rr.wire_bytes(4096), 64);
        let wr = ClientMsg::WriteReq {
            from: ClientId(0),
            ns: NamespaceId(1),
            slot: 2,
            version: 1,
            req: 3,
            rc: 0,
        };
        assert_eq!(wr.wire_bytes(4096), 4160);
        let fork = ClientMsg::NsFork {
            master: NamespaceId(1),
        };
        assert_eq!(fork.wire_bytes(4096), 64);
        let dropref = ClientMsg::DropRef {
            ns: NamespaceId(1),
            slot: 2,
        };
        assert_eq!(dropref.wire_bytes(4096), 64);
        let resp = ServerMsg::ReadResp {
            req: 3,
            version: 1,
            free_pages: 10,
        };
        assert_eq!(resp.wire_bytes(4096), 4160);
        let ack = ServerMsg::WriteAck {
            req: 3,
            free_pages: 10,
        };
        assert_eq!(ack.wire_bytes(4096), 64);
        let nak = ServerMsg::Nak {
            req: 3,
            err: VmdError::UnwrittenSlot {
                ns: NamespaceId(1),
                slot: 2,
            },
            free_pages: 10,
            spill_free_pages: 0,
        };
        assert_eq!(nak.wire_bytes(4096), 64);
        let avail = ServerMsg::Availability {
            server: ServerId(1),
            free_pages: 5,
            spill_free_pages: 7,
        };
        assert_eq!(avail.wire_bytes(4096), 64);
        let lease = ServerMsg::LeaseUpdate {
            server: ServerId(1),
            lease_pages: 5,
            free_pages: 2,
        };
        assert_eq!(lease.wire_bytes(4096), 64);
    }
}
