//! The per-VM swap device: one VMD namespace exposed through the
//! [`SwapBackend`] block-device interface.
//!
//! This is the abstraction §IV-A highlights: "Using the block device
//! interface, the Migration Manager can interact with all intermediate
//! servers without needing to know where a page will be stored." The
//! handle owns nothing but the namespace id and shared references to the
//! host's VMD client and the cluster directory; reads/writes become
//! protocol messages in the client's outbox.

use std::cell::RefCell;
use std::rc::Rc;

use agile_memory::{SwapBackend, SwapIssue};
use agile_sim_core::{IoCounters, SimDuration, SimTime};

use crate::client::{ReadIssue, VmdClient};
use crate::directory::VmdDirectory;
use crate::proto::NamespaceId;

/// Latency of serving a read from the client's local writeback buffer
/// (a memcpy, no network).
const LOCAL_HIT_LATENCY: SimDuration = SimDuration::from_micros(2);

/// One VM's portable swap device (`/dev/blkN` in the paper).
#[derive(Clone, Debug)]
pub struct VmdSwapDevice {
    client: Rc<RefCell<VmdClient>>,
    directory: Rc<RefCell<VmdDirectory>>,
    ns: NamespaceId,
    page_size: u64,
    counters: IoCounters,
    lost_reads: u64,
}

impl VmdSwapDevice {
    /// Bind namespace `ns` through `client` as a block device.
    pub fn new(
        client: Rc<RefCell<VmdClient>>,
        directory: Rc<RefCell<VmdDirectory>>,
        ns: NamespaceId,
        page_size: u64,
    ) -> Self {
        VmdSwapDevice {
            client,
            directory,
            ns,
            page_size,
            counters: IoCounters::default(),
            lost_reads: 0,
        }
    }

    /// Reads that could not be served because every replica of the slot
    /// was gone (possible only below replication factor 2). The guest is
    /// unblocked with whatever stale content the page table holds — the
    /// loss is reported here instead of wedging or killing the simulation.
    pub fn lost_reads(&self) -> u64 {
        self.lost_reads
    }

    /// The namespace this device exposes.
    pub fn namespace(&self) -> NamespaceId {
        self.ns
    }

    /// The VMD client this device routes through. Reconnecting the portable
    /// device on the destination host after migration = constructing a new
    /// `VmdSwapDevice` with the same namespace and directory but the
    /// destination host's client.
    pub fn client(&self) -> &Rc<RefCell<VmdClient>> {
        &self.client
    }

    /// Free a slot (page discarded, e.g. the guest wrote it afresh).
    pub fn free_slot(&mut self, slot: u32) {
        self.client
            .borrow_mut()
            .free(&mut self.directory.borrow_mut(), self.ns, slot);
    }

    /// Tear down the whole namespace (VM destroyed): drop buffered
    /// writebacks, cancel relocations, and free every placed slot on its
    /// servers. Returns the number of placements released. After this the
    /// namespace owns no storage anywhere — in-flight demotions or
    /// relocations that complete later must not resurrect any slot.
    pub fn purge(&mut self) -> usize {
        self.client
            .borrow_mut()
            .purge_namespace(&mut self.directory.borrow_mut(), self.ns)
    }
}

impl SwapBackend for VmdSwapDevice {
    fn read(&mut self, now: SimTime, slot: u32, req: u64) -> SwapIssue {
        self.counters.read_ops += 1;
        self.counters.read_bytes += self.page_size;
        let issue = self
            .client
            .borrow_mut()
            .read(&self.directory.borrow(), self.ns, slot, req);
        match issue {
            ReadIssue::Local { .. } => SwapIssue::CompleteAt(now + LOCAL_HIT_LATENCY),
            ReadIssue::Sent => SwapIssue::Pending,
            // Every replica gone: complete immediately so the guest is not
            // wedged, and count the loss (surfaced in chaos reports).
            ReadIssue::Failed(_) => {
                self.lost_reads += 1;
                SwapIssue::CompleteAt(now + LOCAL_HIT_LATENCY)
            }
        }
    }

    fn write(&mut self, _now: SimTime, slot: u32, version: u32, req: u64) -> SwapIssue {
        self.counters.write_ops += 1;
        self.counters.write_bytes += self.page_size;
        self.client.borrow_mut().write(
            &mut self.directory.borrow_mut(),
            self.ns,
            slot,
            version,
            req,
        );
        SwapIssue::Pending
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn page_size(&self) -> u64 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ClientId, ServerId};

    fn device() -> VmdSwapDevice {
        let client = Rc::new(RefCell::new(VmdClient::new(
            ClientId(0),
            [(ServerId(0), 1000u64)],
        )));
        let dir = Rc::new(RefCell::new(VmdDirectory::new()));
        let ns = dir.borrow_mut().create_namespace();
        VmdSwapDevice::new(client, dir, ns, 4096)
    }

    #[test]
    fn write_is_pending_and_enqueues_message() {
        let mut d = device();
        assert_eq!(d.write(SimTime::ZERO, 0, 1, 1), SwapIssue::Pending);
        assert!(d.client().borrow().has_outbox());
        assert_eq!(d.counters().write_ops, 1);
    }

    #[test]
    fn read_of_buffered_write_completes_locally() {
        let mut d = device();
        d.write(SimTime::ZERO, 0, 1, 1);
        match d.read(SimTime::ZERO, 0, 2) {
            SwapIssue::CompleteAt(t) => assert_eq!(t, SimTime::ZERO + LOCAL_HIT_LATENCY),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_after_ack_goes_to_network() {
        let mut d = device();
        d.write(SimTime::ZERO, 0, 7, 1);
        d.client().borrow_mut().drain_outbox().for_each(drop);
        d.client().borrow_mut().on_server_msg(
            ServerId(0),
            crate::proto::ServerMsg::WriteAck {
                req: 1,
                free_pages: 999,
            },
        );
        assert_eq!(d.read(SimTime::ZERO, 0, 2), SwapIssue::Pending);
    }

    #[test]
    fn purge_releases_every_placement() {
        let mut d = device();
        d.write(SimTime::ZERO, 0, 1, 1);
        d.write(SimTime::ZERO, 1, 1, 2);
        assert_eq!(d.purge(), 2);
        // The directory holds nothing for the namespace and the client
        // queued a Free per placement for the servers.
        assert_eq!(d.directory.borrow().placed_slots(), 0);
        assert!(d.client().borrow().has_outbox());
    }

    #[test]
    fn two_devices_same_client_different_namespaces() {
        let client = Rc::new(RefCell::new(VmdClient::new(
            ClientId(0),
            [(ServerId(0), 1000u64)],
        )));
        let dir = Rc::new(RefCell::new(VmdDirectory::new()));
        let ns1 = dir.borrow_mut().create_namespace();
        let ns2 = dir.borrow_mut().create_namespace();
        let mut d1 = VmdSwapDevice::new(Rc::clone(&client), Rc::clone(&dir), ns1, 4096);
        let mut d2 = VmdSwapDevice::new(Rc::clone(&client), Rc::clone(&dir), ns2, 4096);
        d1.write(SimTime::ZERO, 0, 1, 1);
        d2.write(SimTime::ZERO, 0, 2, 2);
        // Same slot number, different namespaces → distinct placements.
        assert_eq!(dir.borrow().placed_slots(), 2);
        // Per-device iostat views are independent.
        assert_eq!(d1.counters().write_ops, 1);
        assert_eq!(d2.counters().write_ops, 1);
    }
}
