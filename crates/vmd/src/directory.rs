//! Namespace directory: which servers hold each slot of each namespace.
//!
//! The paper's per-VM swap device is *portable*: after migration the
//! destination host's VMD client must locate pages the source host's client
//! placed. The placement map is namespace metadata that travels with the
//! namespace — we model it as a directory shared by all clients (in the
//! real system it is part of the VMD client state handed off with the
//! block device).
//!
//! Each slot maps to a [`ReplicaSet`] (primary first) so writes can be
//! replicated k ways and reads can fail over when an intermediate host
//! crashes. Two secondary indices keep the fault paths cheap: a
//! per-namespace slot index makes [`VmdDirectory::purge_namespace`]
//! O(slots-in-namespace) instead of a full-map scan, and a per-server
//! index makes crash-time replica enumeration O(slots-on-server).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::proto::{NamespaceId, ServerId};

/// Upper bound on replicas per slot (the ring walk never needs more).
pub const MAX_REPLICAS: usize = 4;

/// Deterministically-ordered set of servers holding one slot. The first
/// entry is the primary (the server the original placement chose); repair
/// appends, crash eviction removes in place, and order is preserved so
/// identical histories give identical failover choices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplicaSet {
    servers: [ServerId; MAX_REPLICAS],
    len: u8,
}

impl Default for ReplicaSet {
    fn default() -> Self {
        ReplicaSet::EMPTY
    }
}

impl ReplicaSet {
    /// The empty set.
    pub const EMPTY: ReplicaSet = ReplicaSet {
        servers: [ServerId(0); MAX_REPLICAS],
        len: 0,
    };

    /// A set holding a single server.
    pub fn one(server: ServerId) -> Self {
        let mut set = ReplicaSet::EMPTY;
        set.push(server);
        set
    }

    /// The replicas, primary first.
    pub fn as_slice(&self) -> &[ServerId] {
        &self.servers[..self.len as usize]
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no replica holds the slot.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The primary replica, if any.
    pub fn primary(&self) -> Option<ServerId> {
        self.as_slice().first().copied()
    }

    /// True if `server` is one of the replicas.
    pub fn contains(&self, server: ServerId) -> bool {
        self.as_slice().contains(&server)
    }

    /// Append a replica (no-op if present or full). Returns true if added.
    pub fn push(&mut self, server: ServerId) -> bool {
        if self.contains(server) || self.len() == MAX_REPLICAS {
            return false;
        }
        self.servers[self.len as usize] = server;
        self.len += 1;
        true
    }

    /// Replace `old` with `new` *in place* (same position), so failover
    /// order is preserved across a relocation. Returns false when `old` is
    /// absent or `new` is already a member.
    pub fn replace(&mut self, old: ServerId, new: ServerId) -> bool {
        if self.contains(new) {
            return false;
        }
        let Some(pos) = self.as_slice().iter().position(|&s| s == old) else {
            return false;
        };
        self.servers[pos] = new;
        true
    }

    /// Remove a replica, preserving the order of the rest. Returns true if
    /// it was present.
    pub fn remove(&mut self, server: ServerId) -> bool {
        let n = self.len();
        let Some(pos) = self.as_slice().iter().position(|&s| s == server) else {
            return false;
        };
        for i in pos..n - 1 {
            self.servers[i] = self.servers[i + 1];
        }
        self.len -= 1;
        true
    }
}

/// Fork bookkeeping for one *master* namespace (a namespace with at least
/// one copy-on-write clone forked from it). Forking seals the master: its
/// placed pages become a frozen gold image shared read-only by every
/// clone, and each shared slot carries a per-page reference count — the
/// number of clones still resolving reads through the master's copy.
#[derive(Clone, Debug, Default)]
struct ForkState {
    /// Live clone namespaces forked from this master (deterministic order).
    children: BTreeSet<NamespaceId>,
    /// Per-slot count of clones still sharing the master's copy. A slot
    /// absent from this map is unshared (every clone broke or dropped it).
    rc: HashMap<u32, u16>,
    /// Slots the owner freed/purged while still shared: the placement is
    /// retained so clones keep resolving, and the last
    /// [`VmdDirectory::drop_share`] releases it for real.
    owner_freed: HashSet<u32>,
}

/// Fork bookkeeping for one *clone* namespace.
#[derive(Clone, Debug)]
struct CloneState {
    /// The sealed master this clone was forked from.
    parent: NamespaceId,
    /// Slots still shared with the master (reads resolve through the
    /// parent). First write — or an explicit drop — removes a slot here.
    shared: BTreeSet<u32>,
}

/// Outcome of dropping one clone's share of a master slot.
#[derive(Clone, Copy, Debug)]
pub struct DropOutcome {
    /// The master namespace that owned the shared page.
    pub master: NamespaceId,
    /// The master slot's replicas at drop time ([`crate::ClientMsg::DropRef`]
    /// targets).
    pub replicas: ReplicaSet,
    /// True when this was the last sharer of an owner-freed slot: the
    /// placement has been forgotten here, and the servers release the page
    /// when the `DropRef` reaches them.
    pub released: bool,
}

/// Cluster-wide namespace metadata.
#[derive(Clone, Debug, Default)]
pub struct VmdDirectory {
    placement: HashMap<(NamespaceId, u32), ReplicaSet>,
    /// Per-namespace slot index: purge and namespace enumeration touch
    /// only this namespace's slots.
    ns_slots: HashMap<NamespaceId, HashSet<u32>>,
    /// Per-server slot index: crash-time replica enumeration touches only
    /// the crashed server's slots.
    server_slots: HashMap<ServerId, HashSet<(NamespaceId, u32)>>,
    /// Fork state of each master namespace with live clones or retained
    /// owner-freed shared pages.
    forks: HashMap<NamespaceId, ForkState>,
    /// Fork state of each live clone namespace.
    clones: HashMap<NamespaceId, CloneState>,
    next_ns: u32,
}

impl VmdDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        VmdDirectory::default()
    }

    /// Allocate a fresh namespace id (one per VM).
    pub fn create_namespace(&mut self) -> NamespaceId {
        let id = NamespaceId(self.next_ns);
        self.next_ns += 1;
        id
    }

    /// The primary server for `(ns, slot)`, if it has ever been written.
    pub fn lookup(&self, ns: NamespaceId, slot: u32) -> Option<ServerId> {
        self.placement.get(&(ns, slot)).and_then(|s| s.primary())
    }

    /// Every replica of `(ns, slot)` (empty set if unplaced).
    pub fn replicas(&self, ns: NamespaceId, slot: u32) -> ReplicaSet {
        self.placement
            .get(&(ns, slot))
            .copied()
            .unwrap_or(ReplicaSet::EMPTY)
    }

    /// Record a single-server placement decision (replaces any existing
    /// replica set — used by unreplicated writes and tests).
    pub fn record(&mut self, ns: NamespaceId, slot: u32, server: ServerId) {
        self.set_replicas(ns, slot, ReplicaSet::one(server));
    }

    /// Install the full replica set for a slot, replacing any previous one.
    pub fn set_replicas(&mut self, ns: NamespaceId, slot: u32, set: ReplicaSet) {
        if let Some(old) = self.placement.insert((ns, slot), set) {
            for &srv in old.as_slice() {
                if let Some(slots) = self.server_slots.get_mut(&srv) {
                    slots.remove(&(ns, slot));
                }
            }
        }
        if set.is_empty() {
            self.placement.remove(&(ns, slot));
            if let Some(slots) = self.ns_slots.get_mut(&ns) {
                slots.remove(&slot);
            }
            return;
        }
        self.ns_slots.entry(ns).or_default().insert(slot);
        for &srv in set.as_slice() {
            self.server_slots.entry(srv).or_default().insert((ns, slot));
        }
    }

    /// Add one replica to an existing placement (repair / re-replication).
    /// Returns true if the replica was added.
    pub fn add_replica(&mut self, ns: NamespaceId, slot: u32, server: ServerId) -> bool {
        let Some(set) = self.placement.get_mut(&(ns, slot)) else {
            return false;
        };
        if !set.push(server) {
            return false;
        }
        self.server_slots
            .entry(server)
            .or_default()
            .insert((ns, slot));
        true
    }

    /// Remove one replica of a slot (its server NAKed or crashed). Drops
    /// the placement entirely when no replica remains. Returns true if the
    /// replica was present.
    pub fn remove_replica(&mut self, ns: NamespaceId, slot: u32, server: ServerId) -> bool {
        let Some(set) = self.placement.get_mut(&(ns, slot)) else {
            return false;
        };
        if !set.remove(server) {
            return false;
        }
        if set.is_empty() {
            self.placement.remove(&(ns, slot));
            if let Some(slots) = self.ns_slots.get_mut(&ns) {
                slots.remove(&slot);
            }
        }
        if let Some(slots) = self.server_slots.get_mut(&server) {
            slots.remove(&(ns, slot));
        }
        true
    }

    /// Relocation: move one replica of `(ns, slot)` from `old` to `new`,
    /// position preserved (see [`ReplicaSet::replace`]), keeping both
    /// secondary indices consistent. Returns false when `old` is not a
    /// replica or `new` already is.
    pub fn replace_replica(
        &mut self,
        ns: NamespaceId,
        slot: u32,
        old: ServerId,
        new: ServerId,
    ) -> bool {
        let Some(set) = self.placement.get_mut(&(ns, slot)) else {
            return false;
        };
        if !set.replace(old, new) {
            return false;
        }
        if let Some(slots) = self.server_slots.get_mut(&old) {
            slots.remove(&(ns, slot));
        }
        self.server_slots.entry(new).or_default().insert((ns, slot));
        true
    }

    /// Forget a slot (freed); returns the primary it was on, if any.
    pub fn forget(&mut self, ns: NamespaceId, slot: u32) -> Option<ServerId> {
        let set = self.placement.remove(&(ns, slot))?;
        if let Some(slots) = self.ns_slots.get_mut(&ns) {
            slots.remove(&slot);
        }
        for &srv in set.as_slice() {
            if let Some(slots) = self.server_slots.get_mut(&srv) {
                slots.remove(&(ns, slot));
            }
        }
        set.primary()
    }

    /// Forget a slot, returning its whole replica set so every holder can
    /// be notified.
    pub fn forget_replicas(&mut self, ns: NamespaceId, slot: u32) -> ReplicaSet {
        let set = self.replicas(ns, slot);
        self.forget(ns, slot);
        set
    }

    /// Fork a copy-on-write clone namespace off `master`. Every slot the
    /// master has placed becomes shared: the clone resolves reads through
    /// the master's placements until its first write to the slot breaks
    /// the share ([`VmdDirectory::drop_share`]). The master is sealed for
    /// as long as any clone shares at least one of its pages. A clone
    /// cannot itself be forked.
    pub fn fork_namespace(&mut self, master: NamespaceId) -> NamespaceId {
        assert!(
            !self.clones.contains_key(&master),
            "cannot fork a clone namespace"
        );
        let clone = self.create_namespace();
        let shared: BTreeSet<u32> = self
            .ns_slots
            .get(&master)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let fork = self.forks.entry(master).or_default();
        fork.children.insert(clone);
        for &slot in &shared {
            *fork.rc.entry(slot).or_insert(0) += 1;
        }
        self.clones.insert(
            clone,
            CloneState {
                parent: master,
                shared,
            },
        );
        clone
    }

    /// The master namespace `ns` was forked from, if it is a clone.
    pub fn parent_of(&self, ns: NamespaceId) -> Option<NamespaceId> {
        self.clones.get(&ns).map(|c| c.parent)
    }

    /// True while `ns` is a sealed master: at least one clone still shares
    /// pages with it (or holds it open through owner-freed retained pages).
    pub fn is_sealed(&self, ns: NamespaceId) -> bool {
        self.forks
            .get(&ns)
            .is_some_and(|f| !f.children.is_empty() || !f.rc.is_empty())
    }

    /// Number of live clones forked from `ns`.
    pub fn clone_count(&self, ns: NamespaceId) -> usize {
        self.forks.get(&ns).map_or(0, |f| f.children.len())
    }

    /// True when the clone `ns` still shares `slot` with its master.
    pub fn is_shared(&self, ns: NamespaceId, slot: u32) -> bool {
        self.clones
            .get(&ns)
            .is_some_and(|c| c.shared.contains(&slot))
    }

    /// The namespace a read of `(ns, slot)` must be served under: the
    /// parent for a still-shared clone slot, `ns` itself otherwise.
    pub fn resolve(&self, ns: NamespaceId, slot: u32) -> NamespaceId {
        match self.clones.get(&ns) {
            Some(c) if c.shared.contains(&slot) => c.parent,
            _ => ns,
        }
    }

    /// Fork reference count of a master's slot (0 when unshared).
    pub fn shared_rc(&self, master: NamespaceId, slot: u32) -> u16 {
        self.forks
            .get(&master)
            .and_then(|f| f.rc.get(&slot).copied())
            .unwrap_or(0)
    }

    /// The clone's still-shared slots, sorted.
    pub fn shared_slots(&self, clone: NamespaceId) -> Vec<u32> {
        self.clones
            .get(&clone)
            .map(|c| c.shared.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Servers holding at least one of the master's placed pages, sorted
    /// and deduplicated ([`crate::ClientMsg::NsFork`] broadcast targets).
    pub fn fork_servers(&self, master: NamespaceId) -> Vec<ServerId> {
        let mut out: Vec<ServerId> = Vec::new();
        if let Some(slots) = self.ns_slots.get(&master) {
            for &slot in slots {
                for &srv in self.replicas(master, slot).as_slice() {
                    out.push(srv);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Drop the clone's share of one master slot (copy-on-write break,
    /// clone purge, or guest slot discard). Returns `None` when the slot
    /// was not shared; otherwise the master, its current replicas (the
    /// caller sends each a [`crate::ClientMsg::DropRef`]), and whether the
    /// last reference to an owner-freed page was just released (the
    /// placement is forgotten here; the servers free on the `DropRef`).
    pub fn drop_share(&mut self, clone: NamespaceId, slot: u32) -> Option<DropOutcome> {
        let c = self.clones.get_mut(&clone)?;
        if !c.shared.remove(&slot) {
            return None;
        }
        let master = c.parent;
        let replicas = self.replicas(master, slot);
        let fork = self
            .forks
            .get_mut(&master)
            .expect("clone without fork state");
        let rc = fork.rc.get_mut(&slot).expect("shared slot without rc");
        *rc -= 1;
        let mut released = false;
        if *rc == 0 {
            fork.rc.remove(&slot);
            if fork.owner_freed.remove(&slot) {
                // The owner already freed it: this DropRef releases the
                // retained placement for real.
                self.forget(master, slot);
                released = true;
            }
        }
        Some(DropOutcome {
            master,
            replicas,
            released,
        })
    }

    /// The owner frees one of its own slots while clones still share it:
    /// retain the placement (marked owner-freed) and return the replicas
    /// so the caller can send each a deferred [`crate::ClientMsg::Free`].
    /// Returns `None` when the slot is unshared (free it normally).
    pub fn owner_free_slot(&mut self, ns: NamespaceId, slot: u32) -> Option<ReplicaSet> {
        let fork = self.forks.get_mut(&ns)?;
        if !fork.rc.contains_key(&slot) {
            return None;
        }
        fork.owner_freed.insert(slot);
        Some(self.replicas(ns, slot))
    }

    /// Release a purged clone's fork bookkeeping. Call after every shared
    /// slot went through [`VmdDirectory::drop_share`] and the clone's own
    /// overlay slots were purged. Unseals the master when this was the
    /// last clone and no owner-freed pages remain retained.
    pub fn release_clone(&mut self, clone: NamespaceId) {
        let Some(c) = self.clones.remove(&clone) else {
            return;
        };
        debug_assert!(c.shared.is_empty(), "release_clone with live shares");
        if let Some(fork) = self.forks.get_mut(&c.parent) {
            fork.children.remove(&clone);
            if fork.children.is_empty() && fork.rc.is_empty() {
                self.forks.remove(&c.parent);
            }
        }
    }

    /// Remove every slot of a namespace; returns `(slot, server)` pairs
    /// (one per replica, sorted) so the caller can notify the servers.
    /// O(slots-in-namespace) via the per-namespace index.
    ///
    /// Fork-aware: purging a sealed master *retains* the placements of
    /// slots still shared by clones (marked owner-freed — the servers
    /// defer the release when the owner's `Free` arrives, and the last
    /// clone's [`VmdDirectory::drop_share`] forgets them for real), so a
    /// master purge never drops a page a sibling still reads. The shared
    /// placements are still listed in the result: the owner's `Free` must
    /// reach every holder to set the server-side owner-freed mark.
    pub fn purge_namespace(&mut self, ns: NamespaceId) -> Vec<(u32, ServerId)> {
        let shared: HashSet<u32> = self
            .forks
            .get(&ns)
            .map(|f| f.rc.keys().copied().collect())
            .unwrap_or_default();
        let slots = self.ns_slots.remove(&ns).unwrap_or_default();
        let mut out: Vec<(u32, ServerId)> = Vec::with_capacity(slots.len());
        let mut retained: HashSet<u32> = HashSet::new();
        for slot in slots {
            if shared.contains(&slot) {
                // Still referenced by a clone: keep the placement and both
                // secondary indices; just mark it owner-freed.
                for &srv in self.replicas(ns, slot).as_slice() {
                    out.push((slot, srv));
                }
                retained.insert(slot);
                continue;
            }
            if let Some(set) = self.placement.remove(&(ns, slot)) {
                for &srv in set.as_slice() {
                    out.push((slot, srv));
                    if let Some(s) = self.server_slots.get_mut(&srv) {
                        s.remove(&(ns, slot));
                    }
                }
            }
        }
        if !retained.is_empty() {
            let fork = self.forks.get_mut(&ns).expect("shared without fork");
            fork.owner_freed.extend(retained.iter().copied());
            self.ns_slots.insert(ns, retained);
        }
        out.sort_unstable();
        out
    }

    /// Remove a crashed server from every replica set it appears in.
    /// Returns the affected slots with their *surviving* replica sets,
    /// sorted by `(ns, slot)`; an empty survivor set means the slot's data
    /// is lost (the placement is dropped). O(slots-on-server) via the
    /// per-server index.
    pub fn evict_server(&mut self, server: ServerId) -> Vec<(NamespaceId, u32, ReplicaSet)> {
        let slots = self.server_slots.remove(&server).unwrap_or_default();
        let mut affected: Vec<(NamespaceId, u32)> = slots.into_iter().collect();
        affected.sort_unstable();
        let mut out = Vec::with_capacity(affected.len());
        for (ns, slot) in affected {
            let Some(set) = self.placement.get_mut(&(ns, slot)) else {
                continue;
            };
            set.remove(server);
            let survivors = *set;
            if survivors.is_empty() {
                self.placement.remove(&(ns, slot));
                if let Some(s) = self.ns_slots.get_mut(&ns) {
                    s.remove(&slot);
                }
            }
            out.push((ns, slot, survivors));
        }
        out
    }

    /// Slots with a replica on `server`, sorted (crash/rebalance reporting).
    pub fn slots_on_server(&self, server: ServerId) -> Vec<(NamespaceId, u32)> {
        let mut out: Vec<(NamespaceId, u32)> = self
            .server_slots
            .get(&server)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Placed slots of one namespace, sorted (conservation checks).
    pub fn namespace_slots(&self, ns: NamespaceId) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .ns_slots
            .get(&ns)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Number of placed slots across all namespaces.
    pub fn placed_slots(&self) -> usize {
        self.placement.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_ids_are_unique() {
        let mut d = VmdDirectory::new();
        let a = d.create_namespace();
        let b = d.create_namespace();
        assert_ne!(a, b);
    }

    #[test]
    fn record_lookup_forget() {
        let mut d = VmdDirectory::new();
        let ns = d.create_namespace();
        assert_eq!(d.lookup(ns, 3), None);
        d.record(ns, 3, ServerId(1));
        assert_eq!(d.lookup(ns, 3), Some(ServerId(1)));
        assert_eq!(d.forget(ns, 3), Some(ServerId(1)));
        assert_eq!(d.lookup(ns, 3), None);
    }

    #[test]
    fn purge_is_scoped_and_sorted() {
        let mut d = VmdDirectory::new();
        let a = d.create_namespace();
        let b = d.create_namespace();
        d.record(a, 2, ServerId(0));
        d.record(a, 1, ServerId(1));
        d.record(b, 1, ServerId(0));
        let purged = d.purge_namespace(a);
        assert_eq!(purged, vec![(1, ServerId(1)), (2, ServerId(0))]);
        assert_eq!(d.placed_slots(), 1);
        assert_eq!(d.lookup(b, 1), Some(ServerId(0)));
    }

    #[test]
    fn purge_lists_every_replica() {
        let mut d = VmdDirectory::new();
        let ns = d.create_namespace();
        let mut set = ReplicaSet::one(ServerId(1));
        set.push(ServerId(0));
        d.set_replicas(ns, 5, set);
        assert_eq!(
            d.purge_namespace(ns),
            vec![(5, ServerId(0)), (5, ServerId(1))]
        );
        assert_eq!(d.placed_slots(), 0);
    }

    #[test]
    fn replica_set_push_remove_preserve_order() {
        let mut set = ReplicaSet::one(ServerId(3));
        assert!(set.push(ServerId(1)));
        assert!(!set.push(ServerId(3)), "duplicates rejected");
        assert_eq!(set.as_slice(), &[ServerId(3), ServerId(1)]);
        assert!(set.remove(ServerId(3)));
        assert_eq!(set.primary(), Some(ServerId(1)));
        assert!(!set.remove(ServerId(3)));
    }

    #[test]
    fn replace_preserves_position() {
        let mut set = ReplicaSet::one(ServerId(3));
        set.push(ServerId(1));
        set.push(ServerId(4));
        assert!(set.replace(ServerId(1), ServerId(9)));
        assert_eq!(
            set.as_slice(),
            &[ServerId(3), ServerId(9), ServerId(4)],
            "replacement lands in the old member's position"
        );
        assert!(
            !set.replace(ServerId(1), ServerId(5)),
            "old must be present"
        );
        assert!(!set.replace(ServerId(3), ServerId(4)), "new must be absent");
        assert_eq!(set.as_slice(), &[ServerId(3), ServerId(9), ServerId(4)]);
    }

    #[test]
    fn replace_replica_maintains_indices() {
        let mut d = VmdDirectory::new();
        let ns = d.create_namespace();
        let mut set = ReplicaSet::one(ServerId(0));
        set.push(ServerId(1));
        d.set_replicas(ns, 4, set);
        assert!(d.replace_replica(ns, 4, ServerId(0), ServerId(2)));
        assert_eq!(d.replicas(ns, 4).as_slice(), &[ServerId(2), ServerId(1)]);
        assert!(d.slots_on_server(ServerId(0)).is_empty());
        assert_eq!(d.slots_on_server(ServerId(2)), vec![(ns, 4)]);
        assert!(
            !d.replace_replica(ns, 4, ServerId(0), ServerId(3)),
            "old replica already moved"
        );
        assert_eq!(d.namespace_slots(ns), vec![4]);
    }

    #[test]
    fn evict_server_reports_survivors_and_losses() {
        let mut d = VmdDirectory::new();
        let ns = d.create_namespace();
        let mut set = ReplicaSet::one(ServerId(0));
        set.push(ServerId(1));
        d.set_replicas(ns, 7, set); // replicated: survives
        d.record(ns, 9, ServerId(0)); // single copy: lost
        let evicted = d.evict_server(ServerId(0));
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].1, 7);
        assert_eq!(evicted[0].2.as_slice(), &[ServerId(1)]);
        assert_eq!(evicted[1].1, 9);
        assert!(evicted[1].2.is_empty(), "sole replica lost");
        assert_eq!(d.lookup(ns, 7), Some(ServerId(1)));
        assert_eq!(d.lookup(ns, 9), None);
        assert!(d.slots_on_server(ServerId(0)).is_empty());
    }

    #[test]
    fn indices_follow_add_and_forget() {
        let mut d = VmdDirectory::new();
        let ns = d.create_namespace();
        d.record(ns, 1, ServerId(0));
        assert!(d.add_replica(ns, 1, ServerId(2)));
        assert!(!d.add_replica(ns, 1, ServerId(2)), "idempotent");
        assert_eq!(d.slots_on_server(ServerId(2)), vec![(ns, 1)]);
        let set = d.forget_replicas(ns, 1);
        assert_eq!(set.as_slice(), &[ServerId(0), ServerId(2)]);
        assert!(d.slots_on_server(ServerId(2)).is_empty());
        assert_eq!(d.placed_slots(), 0);
    }
}
