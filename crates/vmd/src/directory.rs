//! Namespace directory: which server holds each slot of each namespace.
//!
//! The paper's per-VM swap device is *portable*: after migration the
//! destination host's VMD client must locate pages the source host's client
//! placed. The placement map is namespace metadata that travels with the
//! namespace — we model it as a directory shared by all clients (in the
//! real system it is part of the VMD client state handed off with the
//! block device).

use std::collections::HashMap;

use crate::proto::{NamespaceId, ServerId};

/// Cluster-wide namespace metadata.
#[derive(Clone, Debug, Default)]
pub struct VmdDirectory {
    placement: HashMap<(NamespaceId, u32), ServerId>,
    next_ns: u32,
}

impl VmdDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        VmdDirectory::default()
    }

    /// Allocate a fresh namespace id (one per VM).
    pub fn create_namespace(&mut self) -> NamespaceId {
        let id = NamespaceId(self.next_ns);
        self.next_ns += 1;
        id
    }

    /// Where `(ns, slot)` is stored, if it has ever been written.
    pub fn lookup(&self, ns: NamespaceId, slot: u32) -> Option<ServerId> {
        self.placement.get(&(ns, slot)).copied()
    }

    /// Record a placement decision.
    pub fn record(&mut self, ns: NamespaceId, slot: u32, server: ServerId) {
        self.placement.insert((ns, slot), server);
    }

    /// Forget a slot (freed).
    pub fn forget(&mut self, ns: NamespaceId, slot: u32) -> Option<ServerId> {
        self.placement.remove(&(ns, slot))
    }

    /// Remove every slot of a namespace; returns `(slot, server)` pairs so
    /// the caller can notify the servers.
    pub fn purge_namespace(&mut self, ns: NamespaceId) -> Vec<(u32, ServerId)> {
        let mut out: Vec<(u32, ServerId)> = self
            .placement
            .iter()
            .filter(|((n, _), _)| *n == ns)
            .map(|((_, slot), srv)| (*slot, *srv))
            .collect();
        out.sort_unstable();
        self.placement.retain(|(n, _), _| *n != ns);
        out
    }

    /// Number of placed slots across all namespaces.
    pub fn placed_slots(&self) -> usize {
        self.placement.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_ids_are_unique() {
        let mut d = VmdDirectory::new();
        let a = d.create_namespace();
        let b = d.create_namespace();
        assert_ne!(a, b);
    }

    #[test]
    fn record_lookup_forget() {
        let mut d = VmdDirectory::new();
        let ns = d.create_namespace();
        assert_eq!(d.lookup(ns, 3), None);
        d.record(ns, 3, ServerId(1));
        assert_eq!(d.lookup(ns, 3), Some(ServerId(1)));
        assert_eq!(d.forget(ns, 3), Some(ServerId(1)));
        assert_eq!(d.lookup(ns, 3), None);
    }

    #[test]
    fn purge_is_scoped_and_sorted() {
        let mut d = VmdDirectory::new();
        let a = d.create_namespace();
        let b = d.create_namespace();
        d.record(a, 2, ServerId(0));
        d.record(a, 1, ServerId(1));
        d.record(b, 1, ServerId(0));
        let purged = d.purge_namespace(a);
        assert_eq!(purged, vec![(1, ServerId(1)), (2, ServerId(0))]);
        assert_eq!(d.placed_slots(), 1);
        assert_eq!(d.lookup(b, 1), Some(ServerId(0)));
    }
}
