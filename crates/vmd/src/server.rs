//! VMD server module (runs on each intermediate host).
//!
//! Stores pages in the host's spare memory. Memory is allocated only when a
//! write arrives — no reservation up front (§IV-A). An optional disk tier
//! (the paper's suggested HD/SSD extension) absorbs writes that exceed the
//! memory capacity instead of rejecting them; reads from the disk tier are
//! flagged so the cluster executor can charge the device time.
//!
//! ## Elastic contribution leases
//!
//! The server's DRAM contribution is bounded by a **lease**
//! ([`VmdServer::set_lease`]) sized by the pool manager from the donor
//! host's own memory demand. `free_pages()` — and therefore every reply
//! and availability gossip — advertises lease-aware capacity, so clients
//! never place onto a shrinking server. When a shrink leaves the server
//! holding more DRAM pages than the lease allows
//! ([`VmdServer::over_lease_pages`]), the pool manager reclaims via
//! [`VmdServer::reclaim_victims`] (relocation) and
//! [`VmdServer::demote_victims`] (spill to the disk tier). Victim order is
//! deterministic: coldest namespace first (a logical access clock, not
//! wall time — the server is sans-IO), slots ascending within a namespace.

use std::collections::HashMap;

use crate::proto::{ClientMsg, NamespaceId, ServerId, ServerMsg, VmdError};

/// Where a stored page lives on the intermediate host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// In the server's spare DRAM.
    Memory,
    /// Spilled to the server's local disk (extension, §IV-A last paragraph).
    Disk,
}

/// Outcome of handling one client message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerReply {
    /// The reply to transmit, if any (`Free` is fire-and-forget).
    pub msg: Option<ServerMsg>,
    /// Tier that served/absorbed the request (for device-time accounting).
    pub tier: Tier,
}

/// One intermediate host's VMD server state.
#[derive(Clone, Debug)]
pub struct VmdServer {
    id: ServerId,
    mem_capacity_pages: u64,
    disk_capacity_pages: u64,
    /// Current contribution lease; DRAM beyond `min(lease, capacity)` is
    /// off-limits to new placements. Starts at the full capacity.
    lease_pages: u64,
    store: HashMap<(NamespaceId, u32), (u32, Tier)>,
    mem_used: u64,
    disk_used: u64,
    /// Logical access clock: bumped on every read/write so victim
    /// selection can order namespaces coldest-first deterministically.
    access_clock: u64,
    /// Last access-clock value per namespace.
    ns_last_access: HashMap<NamespaceId, u64>,
    /// Stored pages per namespace (both tiers).
    ns_pages: HashMap<NamespaceId, u64>,
}

impl VmdServer {
    /// Create a server contributing `mem_capacity_pages` of spare DRAM and
    /// (optionally) `disk_capacity_pages` of spill space.
    pub fn new(id: ServerId, mem_capacity_pages: u64, disk_capacity_pages: u64) -> Self {
        VmdServer {
            id,
            mem_capacity_pages,
            disk_capacity_pages,
            lease_pages: mem_capacity_pages,
            store: HashMap::new(),
            mem_used: 0,
            disk_used: 0,
            access_clock: 0,
            ns_last_access: HashMap::new(),
            ns_pages: HashMap::new(),
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// DRAM pages placements may use right now: `min(lease, capacity)`.
    fn effective_mem(&self) -> u64 {
        self.lease_pages.min(self.mem_capacity_pages)
    }

    /// Free *leased* DRAM pages right now. Every reply and availability
    /// report goes through here, so gossip advertises leased — not raw —
    /// capacity and clients avoid shrinking servers.
    pub fn free_pages(&self) -> u64 {
        self.effective_mem().saturating_sub(self.mem_used)
    }

    /// Raw DRAM contribution ceiling (lease-independent).
    pub fn mem_capacity_pages(&self) -> u64 {
        self.mem_capacity_pages
    }

    /// DRAM pages currently storing data.
    pub fn mem_used_pages(&self) -> u64 {
        self.mem_used
    }

    /// The current contribution lease, in pages (clamped to capacity).
    pub fn lease_pages(&self) -> u64 {
        self.effective_mem()
    }

    /// Resize the contribution lease (clamped to the raw capacity).
    /// Returns the new effective lease. Shrinking below `mem_used` does
    /// not evict anything by itself — the pool manager drains the excess
    /// via [`VmdServer::reclaim_victims`] / [`VmdServer::demote_victims`].
    pub fn set_lease(&mut self, pages: u64) -> u64 {
        self.lease_pages = pages.min(self.mem_capacity_pages);
        self.lease_pages
    }

    /// DRAM pages held beyond the current lease (reclaim backlog).
    pub fn over_lease_pages(&self) -> u64 {
        self.mem_used.saturating_sub(self.effective_mem())
    }

    /// Pages currently stored (both tiers).
    pub fn stored_pages(&self) -> u64 {
        self.mem_used + self.disk_used
    }

    /// Pages stored on the disk tier.
    pub fn disk_pages(&self) -> u64 {
        self.disk_used
    }

    /// True if a write arriving now would have to spill (or fail).
    pub fn memory_full(&self) -> bool {
        self.mem_used >= self.effective_mem()
    }

    /// Build the periodic availability report.
    pub fn availability(&self) -> ServerMsg {
        ServerMsg::Availability {
            server: self.id,
            free_pages: self.free_pages(),
        }
    }

    /// Build a lease-change notification (pushed by the pool manager so
    /// clients learn about a shrink before the next gossip round).
    pub fn lease_update(&self) -> ServerMsg {
        ServerMsg::LeaseUpdate {
            server: self.id,
            lease_pages: self.effective_mem(),
            free_pages: self.free_pages(),
        }
    }

    /// Stored pages (both tiers) per namespace, sorted by namespace id.
    pub fn pages_per_namespace(&self) -> Vec<(NamespaceId, u64)> {
        let mut out: Vec<(NamespaceId, u64)> =
            self.ns_pages.iter().map(|(&ns, &n)| (ns, n)).collect();
        out.sort_unstable_by_key(|&(ns, _)| ns.0);
        out
    }

    fn touch(&mut self, ns: NamespaceId) {
        self.access_clock += 1;
        self.ns_last_access.insert(ns, self.access_clock);
    }

    fn note_insert(&mut self, ns: NamespaceId) {
        *self.ns_pages.entry(ns).or_insert(0) += 1;
    }

    fn note_remove(&mut self, ns: NamespaceId) {
        if let Some(n) = self.ns_pages.get_mut(&ns) {
            *n -= 1;
            if *n == 0 {
                self.ns_pages.remove(&ns);
                self.ns_last_access.remove(&ns);
            }
        }
    }

    /// Up to `max` DRAM-tier victim slots in deterministic reclaim order:
    /// coldest namespace first (least-recently-accessed; ties break to the
    /// lower namespace id), slots ascending within a namespace.
    pub fn reclaim_victims(&self, max: usize) -> Vec<(NamespaceId, u32)> {
        if max == 0 || self.mem_used == 0 {
            return Vec::new();
        }
        let mut by_ns: HashMap<NamespaceId, Vec<u32>> = HashMap::new();
        for (&(ns, slot), &(_, tier)) in &self.store {
            if tier == Tier::Memory {
                by_ns.entry(ns).or_default().push(slot);
            }
        }
        let mut order: Vec<NamespaceId> = by_ns.keys().copied().collect();
        order.sort_unstable_by_key(|ns| (self.ns_last_access.get(ns).copied().unwrap_or(0), ns.0));
        let mut out = Vec::with_capacity(max.min(self.mem_used as usize));
        for ns in order {
            let mut slots = by_ns.remove(&ns).expect("grouped above");
            slots.sort_unstable();
            for slot in slots {
                out.push((ns, slot));
                if out.len() == max {
                    return out;
                }
            }
        }
        out
    }

    /// Demote up to `max` victim slots (same order as
    /// [`VmdServer::reclaim_victims`]) from DRAM to the disk tier, bounded
    /// by disk headroom. Returns the demoted slots.
    pub fn demote_victims(&mut self, max: usize) -> Vec<(NamespaceId, u32)> {
        let room = self.disk_capacity_pages.saturating_sub(self.disk_used);
        let victims = self.reclaim_victims(max.min(room as usize));
        for &(ns, slot) in &victims {
            let entry = self.store.get_mut(&(ns, slot)).expect("victim exists");
            entry.1 = Tier::Disk;
            self.mem_used -= 1;
            self.disk_used += 1;
        }
        victims
    }

    /// Handle one client message. Returns the reply (and which tier did
    /// the work). A read of a never-written slot — which happens when this
    /// server crashed, lost its store, and rejoined — is answered with a
    /// [`ServerMsg::Nak`] so the client can fail over to another replica;
    /// same for a write that exceeds both tiers.
    pub fn handle(&mut self, msg: ClientMsg) -> ServerReply {
        match msg {
            ClientMsg::ReadReq { ns, slot, req, .. } => {
                let Some(&(version, tier)) = self.store.get(&(ns, slot)) else {
                    return ServerReply {
                        msg: Some(ServerMsg::Nak {
                            req,
                            err: VmdError::UnwrittenSlot { ns, slot },
                            free_pages: self.free_pages(),
                        }),
                        tier: Tier::Memory,
                    };
                };
                self.touch(ns);
                // A read hit on the disk tier promotes the page back to
                // DRAM when the lease has headroom (demotion without
                // promotion wrecks repeat-access latency). This read still
                // pays the disk time — the reply reports `Tier::Disk`.
                if tier == Tier::Disk && self.mem_used < self.effective_mem() {
                    self.store.insert((ns, slot), (version, Tier::Memory));
                    self.disk_used -= 1;
                    self.mem_used += 1;
                }
                ServerReply {
                    msg: Some(ServerMsg::ReadResp {
                        req,
                        version,
                        free_pages: self.free_pages(),
                    }),
                    tier,
                }
            }
            ClientMsg::WriteReq {
                ns,
                slot,
                version,
                req,
                ..
            } => {
                let tier = match self.store.get(&(ns, slot)) {
                    // Overwrite in place — but a slot stranded on the disk
                    // tier while memory was full is promoted to DRAM as
                    // soon as the lease has headroom again.
                    Some((_, Tier::Disk)) if self.mem_used < self.effective_mem() => {
                        self.disk_used -= 1;
                        self.mem_used += 1;
                        Tier::Memory
                    }
                    Some((_, t)) => *t,
                    None => {
                        if self.mem_used < self.effective_mem() {
                            self.mem_used += 1;
                            self.note_insert(ns);
                            Tier::Memory
                        } else if self.disk_used < self.disk_capacity_pages {
                            self.disk_used += 1;
                            self.note_insert(ns);
                            Tier::Disk
                        } else {
                            // Leased DRAM and disk both full (stale
                            // availability view at the client): refuse so
                            // the client re-places.
                            return ServerReply {
                                msg: Some(ServerMsg::Nak {
                                    req,
                                    err: VmdError::OutOfCapacity { ns, slot },
                                    free_pages: 0,
                                }),
                                tier: Tier::Memory,
                            };
                        }
                    }
                };
                self.touch(ns);
                self.store.insert((ns, slot), (version, tier));
                ServerReply {
                    msg: Some(ServerMsg::WriteAck {
                        req,
                        free_pages: self.free_pages(),
                    }),
                    tier,
                }
            }
            ClientMsg::Free { ns, slot } => {
                let tier = if let Some((_, t)) = self.store.remove(&(ns, slot)) {
                    match t {
                        Tier::Memory => self.mem_used -= 1,
                        Tier::Disk => self.disk_used -= 1,
                    }
                    self.note_remove(ns);
                    t
                } else {
                    Tier::Memory
                };
                ServerReply { msg: None, tier }
            }
        }
    }

    /// Crash: the host died and its DRAM (and, in our model, spill-tier
    /// contents) are gone. Capacity (and the current lease) is retained
    /// for when the host rejoins empty. Returns the number of pages lost.
    pub fn crash_reset(&mut self) -> u64 {
        let lost = self.stored_pages();
        self.store.clear();
        self.mem_used = 0;
        self.disk_used = 0;
        self.ns_last_access.clear();
        self.ns_pages.clear();
        lost
    }

    /// Drop every slot of a namespace (the VM was destroyed, not migrated).
    /// Returns the number of pages released.
    pub fn purge_namespace(&mut self, ns: NamespaceId) -> u64 {
        let before = self.stored_pages();
        self.store.retain(|(n, _), (_, tier)| {
            if *n == ns {
                match tier {
                    Tier::Memory => self.mem_used -= 1,
                    Tier::Disk => self.disk_used -= 1,
                }
                false
            } else {
                true
            }
        });
        self.ns_pages.remove(&ns);
        self.ns_last_access.remove(&ns);
        before - self.stored_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ClientId;

    fn write(ns: u32, slot: u32, version: u32, req: u64) -> ClientMsg {
        ClientMsg::WriteReq {
            from: ClientId(0),
            ns: NamespaceId(ns),
            slot,
            version,
            req,
        }
    }

    fn read(ns: u32, slot: u32, req: u64) -> ClientMsg {
        ClientMsg::ReadReq {
            from: ClientId(0),
            ns: NamespaceId(ns),
            slot,
            req,
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = VmdServer::new(ServerId(0), 100, 0);
        let r = s.handle(write(1, 5, 42, 7));
        assert_eq!(
            r.msg,
            Some(ServerMsg::WriteAck {
                req: 7,
                free_pages: 99
            })
        );
        let r = s.handle(read(1, 5, 8));
        match r.msg {
            Some(ServerMsg::ReadResp { req, version, .. }) => {
                assert_eq!(req, 8);
                assert_eq!(version, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_allocated_only_on_write() {
        let s = VmdServer::new(ServerId(0), 100, 0);
        assert_eq!(s.free_pages(), 100);
        assert_eq!(s.stored_pages(), 0);
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 0, 2, 2));
        assert_eq!(s.stored_pages(), 1);
        match s.handle(read(1, 0, 3)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 11, 1));
        s.handle(write(2, 0, 22, 2));
        match s.handle(read(1, 0, 3)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 11),
            other => panic!("{other:?}"),
        }
        match s.handle(read(2, 0, 4)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 22),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spills_to_disk_when_memory_full() {
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        assert_eq!(s.handle(write(1, 0, 1, 1)).tier, Tier::Memory);
        assert_eq!(s.handle(write(1, 1, 1, 2)).tier, Tier::Disk);
        assert!(s.memory_full());
        assert_eq!(s.disk_pages(), 1);
        // Reads report the tier so the executor can charge device time.
        assert_eq!(s.handle(read(1, 1, 3)).tier, Tier::Disk);
        assert_eq!(s.handle(read(1, 0, 4)).tier, Tier::Memory);
    }

    #[test]
    fn free_releases_capacity() {
        let mut s = VmdServer::new(ServerId(0), 1, 0);
        s.handle(write(1, 0, 1, 1));
        assert!(s.memory_full());
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        assert!(!s.memory_full());
        assert_eq!(s.free_pages(), 1);
    }

    #[test]
    fn purge_namespace_only_touches_that_namespace() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        s.handle(write(2, 0, 1, 3));
        assert_eq!(s.purge_namespace(NamespaceId(1)), 2);
        assert_eq!(s.stored_pages(), 1);
        assert_eq!(
            s.pages_per_namespace(),
            vec![(NamespaceId(2), 1)],
            "per-namespace accounting follows the purge"
        );
    }

    #[test]
    fn read_of_unwritten_slot_naks() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        let r = s.handle(read(1, 99, 1));
        assert_eq!(
            r.msg,
            Some(ServerMsg::Nak {
                req: 1,
                err: VmdError::UnwrittenSlot {
                    ns: NamespaceId(1),
                    slot: 99,
                },
                free_pages: 10,
            })
        );
    }

    #[test]
    fn overflow_write_naks_without_storing() {
        let mut s = VmdServer::new(ServerId(0), 1, 0);
        s.handle(write(1, 0, 1, 1));
        let r = s.handle(write(1, 1, 1, 2));
        assert!(matches!(
            r.msg,
            Some(ServerMsg::Nak {
                req: 2,
                err: VmdError::OutOfCapacity { .. },
                ..
            })
        ));
        assert_eq!(s.stored_pages(), 1);
    }

    #[test]
    fn crash_reset_loses_contents_keeps_capacity() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        assert_eq!(s.crash_reset(), 2);
        assert_eq!(s.free_pages(), 10);
        assert!(s.pages_per_namespace().is_empty());
        // A rejoined server no longer has the page: read NAKs.
        assert!(matches!(
            s.handle(read(1, 0, 3)).msg,
            Some(ServerMsg::Nak { .. })
        ));
    }

    #[test]
    fn availability_reports_free() {
        let mut s = VmdServer::new(ServerId(3), 5, 0);
        s.handle(write(1, 0, 1, 1));
        assert_eq!(
            s.availability(),
            ServerMsg::Availability {
                server: ServerId(3),
                free_pages: 4
            }
        );
    }

    #[test]
    fn overwrite_promotes_stranded_disk_page() {
        // Regression: a slot written while memory was full used to stay on
        // Tier::Disk forever, even after DRAM freed up.
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        s.handle(write(1, 0, 1, 1)); // fills DRAM
        assert_eq!(s.handle(write(1, 1, 1, 2)).tier, Tier::Disk);
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        // Overwrite with DRAM headroom: the page moves up.
        assert_eq!(s.handle(write(1, 1, 2, 3)).tier, Tier::Memory);
        assert_eq!(s.disk_pages(), 0);
        assert_eq!(s.handle(read(1, 1, 4)).tier, Tier::Memory);
    }

    #[test]
    fn read_hit_promotes_stranded_disk_page() {
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2)); // spills
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        // The promoting read itself still pays the disk time…
        assert_eq!(s.handle(read(1, 1, 3)).tier, Tier::Disk);
        // …but the page now lives in DRAM.
        assert_eq!(s.disk_pages(), 0);
        assert_eq!(s.handle(read(1, 1, 4)).tier, Tier::Memory);
    }

    #[test]
    fn lease_caps_free_pages_and_placements() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        assert_eq!(s.free_pages(), 8);
        assert_eq!(s.set_lease(5), 5);
        // Gossip and replies advertise leased capacity (satellite fix).
        assert_eq!(s.free_pages(), 3);
        assert_eq!(
            s.availability(),
            ServerMsg::Availability {
                server: ServerId(0),
                free_pages: 3
            }
        );
        // The lease clamps to the raw capacity.
        assert_eq!(s.set_lease(20), 10);
    }

    #[test]
    fn shrunk_lease_rejects_new_writes() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.set_lease(1);
        assert_eq!(s.handle(write(1, 0, 1, 1)).tier, Tier::Memory);
        // Raw capacity has room, the lease does not: NAK, not store.
        assert!(matches!(
            s.handle(write(1, 1, 1, 2)).msg,
            Some(ServerMsg::Nak {
                err: VmdError::OutOfCapacity { .. },
                ..
            })
        ));
        assert_eq!(s.stored_pages(), 1);
    }

    #[test]
    fn over_lease_tracks_reclaim_backlog() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        for slot in 0..4 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        assert_eq!(s.over_lease_pages(), 0);
        s.set_lease(1);
        assert_eq!(s.over_lease_pages(), 3);
        assert_eq!(s.free_pages(), 0);
    }

    #[test]
    fn reclaim_victims_coldest_namespace_first() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(2, 5, 1, 1));
        s.handle(write(2, 3, 1, 2));
        s.handle(write(1, 7, 1, 3));
        // Namespace 2 was touched again: it is now the hottest.
        s.handle(read(2, 3, 4));
        let victims = s.reclaim_victims(3);
        assert_eq!(
            victims,
            vec![
                (NamespaceId(1), 7),
                (NamespaceId(2), 3),
                (NamespaceId(2), 5),
            ],
            "coldest namespace first, slots ascending"
        );
        assert_eq!(s.reclaim_victims(1), vec![(NamespaceId(1), 7)]);
    }

    #[test]
    fn demote_victims_moves_pages_to_disk() {
        let mut s = VmdServer::new(ServerId(0), 4, 2);
        for slot in 0..4 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        s.set_lease(1);
        assert_eq!(s.over_lease_pages(), 3);
        // Bounded by disk headroom (2), not by the request (3).
        let demoted = s.demote_victims(3);
        assert_eq!(demoted.len(), 2);
        assert_eq!(s.disk_pages(), 2);
        assert_eq!(s.over_lease_pages(), 1);
        assert_eq!(s.stored_pages(), 4, "demotion preserves contents");
        assert_eq!(s.pages_per_namespace(), vec![(NamespaceId(1), 4)]);
    }

    #[test]
    fn lease_update_reports_lease_and_free() {
        let mut s = VmdServer::new(ServerId(2), 8, 0);
        s.handle(write(1, 0, 1, 1));
        s.set_lease(4);
        assert_eq!(
            s.lease_update(),
            ServerMsg::LeaseUpdate {
                server: ServerId(2),
                lease_pages: 4,
                free_pages: 3,
            }
        );
    }
}
