//! VMD server module (runs on each intermediate host).
//!
//! Stores pages in the host's spare memory. Memory is allocated only when a
//! write arrives — no reservation up front (§IV-A). An optional disk tier
//! (the paper's suggested HD/SSD extension) absorbs writes that exceed the
//! memory capacity instead of rejecting them; reads from the disk tier are
//! flagged so the cluster executor can charge the device time.

use std::collections::HashMap;

use crate::proto::{ClientMsg, NamespaceId, ServerId, ServerMsg, VmdError};

/// Where a stored page lives on the intermediate host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// In the server's spare DRAM.
    Memory,
    /// Spilled to the server's local disk (extension, §IV-A last paragraph).
    Disk,
}

/// Outcome of handling one client message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerReply {
    /// The reply to transmit, if any (`Free` is fire-and-forget).
    pub msg: Option<ServerMsg>,
    /// Tier that served/absorbed the request (for device-time accounting).
    pub tier: Tier,
}

/// One intermediate host's VMD server state.
#[derive(Clone, Debug)]
pub struct VmdServer {
    id: ServerId,
    mem_capacity_pages: u64,
    disk_capacity_pages: u64,
    store: HashMap<(NamespaceId, u32), (u32, Tier)>,
    mem_used: u64,
    disk_used: u64,
}

impl VmdServer {
    /// Create a server contributing `mem_capacity_pages` of spare DRAM and
    /// (optionally) `disk_capacity_pages` of spill space.
    pub fn new(id: ServerId, mem_capacity_pages: u64, disk_capacity_pages: u64) -> Self {
        VmdServer {
            id,
            mem_capacity_pages,
            disk_capacity_pages,
            store: HashMap::new(),
            mem_used: 0,
            disk_used: 0,
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Free DRAM pages right now.
    pub fn free_pages(&self) -> u64 {
        self.mem_capacity_pages - self.mem_used
    }

    /// Pages currently stored (both tiers).
    pub fn stored_pages(&self) -> u64 {
        self.mem_used + self.disk_used
    }

    /// Pages stored on the disk tier.
    pub fn disk_pages(&self) -> u64 {
        self.disk_used
    }

    /// True if a write arriving now would have to spill (or fail).
    pub fn memory_full(&self) -> bool {
        self.mem_used >= self.mem_capacity_pages
    }

    /// Build the periodic availability report.
    pub fn availability(&self) -> ServerMsg {
        ServerMsg::Availability {
            server: self.id,
            free_pages: self.free_pages(),
        }
    }

    /// Handle one client message. Returns the reply (and which tier did
    /// the work). A read of a never-written slot — which happens when this
    /// server crashed, lost its store, and rejoined — is answered with a
    /// [`ServerMsg::Nak`] so the client can fail over to another replica;
    /// same for a write that exceeds both tiers.
    pub fn handle(&mut self, msg: ClientMsg) -> ServerReply {
        match msg {
            ClientMsg::ReadReq { ns, slot, req, .. } => {
                let Some(&(version, tier)) = self.store.get(&(ns, slot)) else {
                    return ServerReply {
                        msg: Some(ServerMsg::Nak {
                            req,
                            err: VmdError::UnwrittenSlot { ns, slot },
                            free_pages: self.free_pages(),
                        }),
                        tier: Tier::Memory,
                    };
                };
                ServerReply {
                    msg: Some(ServerMsg::ReadResp {
                        req,
                        version,
                        free_pages: self.free_pages(),
                    }),
                    tier,
                }
            }
            ClientMsg::WriteReq {
                ns,
                slot,
                version,
                req,
                ..
            } => {
                let tier = match self.store.get(&(ns, slot)) {
                    Some((_, t)) => *t, // overwrite in place
                    None => {
                        if self.mem_used < self.mem_capacity_pages {
                            self.mem_used += 1;
                            Tier::Memory
                        } else if self.disk_used < self.disk_capacity_pages {
                            self.disk_used += 1;
                            Tier::Disk
                        } else {
                            // Both tiers full (stale availability view at
                            // the client): refuse so the client re-places.
                            return ServerReply {
                                msg: Some(ServerMsg::Nak {
                                    req,
                                    err: VmdError::OutOfCapacity { ns, slot },
                                    free_pages: 0,
                                }),
                                tier: Tier::Memory,
                            };
                        }
                    }
                };
                self.store.insert((ns, slot), (version, tier));
                ServerReply {
                    msg: Some(ServerMsg::WriteAck {
                        req,
                        free_pages: self.free_pages(),
                    }),
                    tier,
                }
            }
            ClientMsg::Free { ns, slot } => {
                let tier = if let Some((_, t)) = self.store.remove(&(ns, slot)) {
                    match t {
                        Tier::Memory => self.mem_used -= 1,
                        Tier::Disk => self.disk_used -= 1,
                    }
                    t
                } else {
                    Tier::Memory
                };
                ServerReply { msg: None, tier }
            }
        }
    }

    /// Crash: the host died and its DRAM (and, in our model, spill-tier
    /// contents) are gone. Capacity is retained for when the host rejoins
    /// empty. Returns the number of pages lost.
    pub fn crash_reset(&mut self) -> u64 {
        let lost = self.stored_pages();
        self.store.clear();
        self.mem_used = 0;
        self.disk_used = 0;
        lost
    }

    /// Drop every slot of a namespace (the VM was destroyed, not migrated).
    /// Returns the number of pages released.
    pub fn purge_namespace(&mut self, ns: NamespaceId) -> u64 {
        let before = self.stored_pages();
        self.store.retain(|(n, _), (_, tier)| {
            if *n == ns {
                match tier {
                    Tier::Memory => self.mem_used -= 1,
                    Tier::Disk => self.disk_used -= 1,
                }
                false
            } else {
                true
            }
        });
        before - self.stored_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ClientId;

    fn write(ns: u32, slot: u32, version: u32, req: u64) -> ClientMsg {
        ClientMsg::WriteReq {
            from: ClientId(0),
            ns: NamespaceId(ns),
            slot,
            version,
            req,
        }
    }

    fn read(ns: u32, slot: u32, req: u64) -> ClientMsg {
        ClientMsg::ReadReq {
            from: ClientId(0),
            ns: NamespaceId(ns),
            slot,
            req,
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = VmdServer::new(ServerId(0), 100, 0);
        let r = s.handle(write(1, 5, 42, 7));
        assert_eq!(
            r.msg,
            Some(ServerMsg::WriteAck {
                req: 7,
                free_pages: 99
            })
        );
        let r = s.handle(read(1, 5, 8));
        match r.msg {
            Some(ServerMsg::ReadResp { req, version, .. }) => {
                assert_eq!(req, 8);
                assert_eq!(version, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_allocated_only_on_write() {
        let s = VmdServer::new(ServerId(0), 100, 0);
        assert_eq!(s.free_pages(), 100);
        assert_eq!(s.stored_pages(), 0);
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 0, 2, 2));
        assert_eq!(s.stored_pages(), 1);
        match s.handle(read(1, 0, 3)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 11, 1));
        s.handle(write(2, 0, 22, 2));
        match s.handle(read(1, 0, 3)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 11),
            other => panic!("{other:?}"),
        }
        match s.handle(read(2, 0, 4)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 22),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spills_to_disk_when_memory_full() {
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        assert_eq!(s.handle(write(1, 0, 1, 1)).tier, Tier::Memory);
        assert_eq!(s.handle(write(1, 1, 1, 2)).tier, Tier::Disk);
        assert!(s.memory_full());
        assert_eq!(s.disk_pages(), 1);
        // Reads report the tier so the executor can charge device time.
        assert_eq!(s.handle(read(1, 1, 3)).tier, Tier::Disk);
        assert_eq!(s.handle(read(1, 0, 4)).tier, Tier::Memory);
    }

    #[test]
    fn free_releases_capacity() {
        let mut s = VmdServer::new(ServerId(0), 1, 0);
        s.handle(write(1, 0, 1, 1));
        assert!(s.memory_full());
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        assert!(!s.memory_full());
        assert_eq!(s.free_pages(), 1);
    }

    #[test]
    fn purge_namespace_only_touches_that_namespace() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        s.handle(write(2, 0, 1, 3));
        assert_eq!(s.purge_namespace(NamespaceId(1)), 2);
        assert_eq!(s.stored_pages(), 1);
    }

    #[test]
    fn read_of_unwritten_slot_naks() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        let r = s.handle(read(1, 99, 1));
        assert_eq!(
            r.msg,
            Some(ServerMsg::Nak {
                req: 1,
                err: VmdError::UnwrittenSlot {
                    ns: NamespaceId(1),
                    slot: 99,
                },
                free_pages: 10,
            })
        );
    }

    #[test]
    fn overflow_write_naks_without_storing() {
        let mut s = VmdServer::new(ServerId(0), 1, 0);
        s.handle(write(1, 0, 1, 1));
        let r = s.handle(write(1, 1, 1, 2));
        assert!(matches!(
            r.msg,
            Some(ServerMsg::Nak {
                req: 2,
                err: VmdError::OutOfCapacity { .. },
                ..
            })
        ));
        assert_eq!(s.stored_pages(), 1);
    }

    #[test]
    fn crash_reset_loses_contents_keeps_capacity() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        assert_eq!(s.crash_reset(), 2);
        assert_eq!(s.free_pages(), 10);
        // A rejoined server no longer has the page: read NAKs.
        assert!(matches!(
            s.handle(read(1, 0, 3)).msg,
            Some(ServerMsg::Nak { .. })
        ));
    }

    #[test]
    fn availability_reports_free() {
        let mut s = VmdServer::new(ServerId(3), 5, 0);
        s.handle(write(1, 0, 1, 1));
        assert_eq!(
            s.availability(),
            ServerMsg::Availability {
                server: ServerId(3),
                free_pages: 4
            }
        );
    }
}
