//! VMD server module (runs on each intermediate host).
//!
//! Stores pages in the host's spare memory. Memory is allocated only when a
//! write arrives — no reservation up front (§IV-A). Below the DRAM head
//! tier sits a configurable **tier stack** ([`crate::tier`]): the legacy
//! disk spill tier, zswap-like compressed memory, CXL-like far memory —
//! each with its own capacity and cost. Writes that exceed the head tier
//! spill to the cheapest lower tier with headroom instead of being
//! rejected; reads report the serving tier index so the cluster executor
//! can charge the right device time.
//!
//! ## Elastic contribution leases
//!
//! The server's DRAM contribution is bounded by a **lease**
//! ([`VmdServer::set_lease`]) sized by the pool manager from the donor
//! host's own memory demand. `free_pages()` — and therefore every reply
//! and availability gossip — advertises lease-aware capacity, so clients
//! never place onto a shrinking server. When a shrink leaves the server
//! holding more DRAM pages than the lease allows
//! ([`VmdServer::over_lease_pages`]), the pool manager reclaims via
//! [`VmdServer::reclaim_victims`] (relocation) and
//! [`VmdServer::demote_victims`] (spill down the stack). Victim order is
//! deterministic: coldest namespace first (a logical access clock, not
//! wall time — the server is sans-IO), slots ascending within a namespace;
//! with the heat policy enabled, coldest *page* first by decayed heat.

use std::collections::HashMap;

use crate::proto::{ClientMsg, NamespaceId, ServerId, ServerMsg, VmdError};
use crate::tier::{HeatPolicy, ResolvedTier, TierBacking, TierLedger, TierStackConfig};

/// Outcome of handling one client message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerReply {
    /// The reply to transmit, if any (`Free` is fire-and-forget).
    pub msg: Option<ServerMsg>,
    /// Index of the tier that served/absorbed the request (0 = DRAM head
    /// tier), for device-time accounting via [`VmdServer::tier_backing`].
    pub tier: u8,
}

/// Per-page metadata: the stored version, which tier holds the page, and
/// the decayed-heat state driving promotion (see [`HeatPolicy`]).
#[derive(Clone, Copy, Debug)]
struct PageMeta {
    version: u32,
    tier: u8,
    heat: u16,
    /// Truncated access-clock value of the last touch (heat age base).
    last: u32,
    /// Fork reference count: clone namespaces still sharing this page
    /// (it belongs to a sealed master's gold image while nonzero). Bumped
    /// by [`ClientMsg::NsFork`], carried exactly on repair/relocation
    /// copies via [`ClientMsg::WriteReq::rc`], dropped by
    /// [`ClientMsg::DropRef`].
    rc: u16,
    /// The owning namespace freed this page while clones still shared it:
    /// the release is deferred until `rc` reaches zero.
    owner_freed: bool,
}

/// One intermediate host's VMD server state.
#[derive(Clone, Debug)]
pub struct VmdServer {
    id: ServerId,
    /// The resolved tier stack, fastest first. Tier 0 is always raw DRAM;
    /// the contribution lease applies to it alone.
    tiers: Vec<ResolvedTier>,
    heat: HeatPolicy,
    /// Current contribution lease; DRAM beyond `min(lease, capacity)` is
    /// off-limits to new placements. Starts at the full capacity.
    lease_pages: u64,
    store: HashMap<(NamespaceId, u32), PageMeta>,
    /// Checked per-tier occupancy (the satellite-1 fix: decrements
    /// debug-assert and saturate instead of silently wrapping).
    ledger: TierLedger,
    /// Logical access clock: bumped on every read/write so victim
    /// selection can order namespaces coldest-first deterministically.
    access_clock: u64,
    /// Last access-clock value per namespace.
    ns_last_access: HashMap<NamespaceId, u64>,
    /// Stored pages per namespace (all tiers).
    ns_pages: HashMap<NamespaceId, u64>,
}

impl VmdServer {
    /// Create a server with the legacy two-tier stack: `mem_capacity_pages`
    /// of spare DRAM and (optionally) `disk_capacity_pages` of spill space
    /// on the host's SSD.
    pub fn new(id: ServerId, mem_capacity_pages: u64, disk_capacity_pages: u64) -> Self {
        let stack = TierStackConfig::legacy();
        Self::with_tiers(
            id,
            stack.resolve(mem_capacity_pages, disk_capacity_pages),
            stack.heat,
        )
    }

    /// Create a server with an explicit resolved tier stack (tier 0 must
    /// be the raw-DRAM head tier) and heat policy.
    pub fn with_tiers(id: ServerId, tiers: Vec<ResolvedTier>, heat: HeatPolicy) -> Self {
        assert!(!tiers.is_empty(), "tier stack cannot be empty");
        assert!(
            tiers[0].backing == TierBacking::Dram,
            "tier 0 must be the raw-DRAM head tier"
        );
        let lease = tiers[0].capacity_pages;
        let n = tiers.len();
        VmdServer {
            id,
            tiers,
            heat,
            lease_pages: lease,
            store: HashMap::new(),
            ledger: TierLedger::new(n),
            access_clock: 0,
            ns_last_access: HashMap::new(),
            ns_pages: HashMap::new(),
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Number of tiers in this server's stack.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// The backing device of tier `t` (for executor device-time charging).
    pub fn tier_backing(&self, t: u8) -> TierBacking {
        self.tiers[t as usize].backing
    }

    /// Pages stored in tier `t`.
    pub fn tier_used_pages(&self, t: u8) -> u64 {
        self.ledger.used(t as usize)
    }

    /// DRAM pages placements may use right now: `min(lease, capacity)`.
    fn effective_mem(&self) -> u64 {
        self.lease_pages.min(self.tiers[0].capacity_pages)
    }

    /// Usable capacity of tier `t`: the lease bounds the DRAM head tier,
    /// lower tiers use their full resolved capacity.
    fn effective_cap(&self, t: usize) -> u64 {
        if t == 0 {
            self.effective_mem()
        } else {
            self.tiers[t].capacity_pages
        }
    }

    /// Free pages in tier `t` right now.
    fn free_in(&self, t: usize) -> u64 {
        self.effective_cap(t).saturating_sub(self.ledger.used(t))
    }

    /// Free *leased* DRAM pages right now. Every reply and availability
    /// report goes through here, so gossip advertises leased — not raw —
    /// capacity and clients avoid shrinking servers.
    pub fn free_pages(&self) -> u64 {
        self.free_in(0)
    }

    /// Free pages across every tier below the DRAM head — the headroom a
    /// write would spill into. Gossiped so placement can prefer servers
    /// that still absorb writes when their leased DRAM is full
    /// (the satellite-2 fix).
    pub fn spill_free_pages(&self) -> u64 {
        (1..self.tiers.len()).map(|t| self.free_in(t)).sum()
    }

    /// Raw DRAM contribution ceiling (lease-independent).
    pub fn mem_capacity_pages(&self) -> u64 {
        self.tiers[0].capacity_pages
    }

    /// DRAM pages currently storing data.
    pub fn mem_used_pages(&self) -> u64 {
        self.ledger.used(0)
    }

    /// The current contribution lease, in pages (clamped to capacity).
    pub fn lease_pages(&self) -> u64 {
        self.effective_mem()
    }

    /// Resize the contribution lease (clamped to the raw capacity).
    /// Returns the new effective lease. Shrinking below the DRAM usage
    /// does not evict anything by itself — the pool manager drains the
    /// excess via [`VmdServer::reclaim_victims`] /
    /// [`VmdServer::demote_victims`].
    pub fn set_lease(&mut self, pages: u64) -> u64 {
        self.lease_pages = pages.min(self.tiers[0].capacity_pages);
        self.lease_pages
    }

    /// DRAM pages held beyond the current lease (reclaim backlog).
    pub fn over_lease_pages(&self) -> u64 {
        self.ledger.used(0).saturating_sub(self.effective_mem())
    }

    /// Pages currently stored (all tiers).
    pub fn stored_pages(&self) -> u64 {
        self.ledger.total()
    }

    /// Pages stored below the DRAM head tier (the legacy "disk" view:
    /// with the default stack this is exactly the disk tier).
    pub fn disk_pages(&self) -> u64 {
        self.ledger.spill_used()
    }

    /// True if a write arriving now would have to spill (or fail).
    pub fn memory_full(&self) -> bool {
        self.ledger.used(0) >= self.effective_mem()
    }

    /// Consistency check: the ledger matches a recount of the store, the
    /// per-namespace counts sum to the store size, and the fork-refcount
    /// invariant holds — an owner-freed page is *only* retained while a
    /// clone still references it (`rc > 0`); the moment the last DropRef
    /// lands the page must be gone. Cheap enough for tests and debug
    /// audits; not on any hot path.
    pub fn ledger_consistent(&self) -> bool {
        self.ledger.matches(self.store.values().map(|m| m.tier))
            && self.ns_pages.values().sum::<u64>() == self.store.len() as u64
            && self.store.values().all(|m| !m.owner_freed || m.rc > 0)
    }

    /// Pages currently carrying a fork reference count (shared gold-image
    /// pages), across all tiers.
    pub fn shared_pages(&self) -> u64 {
        self.store.values().filter(|m| m.rc > 0).count() as u64
    }

    /// Retained pages whose owner already freed them (held alive only by
    /// clone references).
    pub fn owner_freed_pages(&self) -> u64 {
        self.store.values().filter(|m| m.owner_freed).count() as u64
    }

    /// Fork reference count of a stored page (`None` when absent).
    pub fn page_rc(&self, ns: NamespaceId, slot: u32) -> Option<u16> {
        self.store.get(&(ns, slot)).map(|m| m.rc)
    }

    /// Build the periodic availability report.
    pub fn availability(&self) -> ServerMsg {
        ServerMsg::Availability {
            server: self.id,
            free_pages: self.free_pages(),
            spill_free_pages: self.spill_free_pages(),
        }
    }

    /// Build a lease-change notification (pushed by the pool manager so
    /// clients learn about a shrink before the next gossip round).
    pub fn lease_update(&self) -> ServerMsg {
        ServerMsg::LeaseUpdate {
            server: self.id,
            lease_pages: self.effective_mem(),
            free_pages: self.free_pages(),
        }
    }

    /// Stored pages (all tiers) per namespace, sorted by namespace id.
    pub fn pages_per_namespace(&self) -> Vec<(NamespaceId, u64)> {
        let mut out: Vec<(NamespaceId, u64)> =
            self.ns_pages.iter().map(|(&ns, &n)| (ns, n)).collect();
        out.sort_unstable_by_key(|&(ns, _)| ns.0);
        out
    }

    fn touch(&mut self, ns: NamespaceId) {
        self.access_clock += 1;
        self.ns_last_access.insert(ns, self.access_clock);
    }

    fn note_insert(&mut self, ns: NamespaceId) {
        *self.ns_pages.entry(ns).or_insert(0) += 1;
    }

    fn note_remove(&mut self, ns: NamespaceId) {
        if let Some(n) = self.ns_pages.get_mut(&ns) {
            *n -= 1;
            if *n == 0 {
                self.ns_pages.remove(&ns);
                self.ns_last_access.remove(&ns);
            }
        }
    }

    /// The tier a hit page in tier `from` should be promoted into: the
    /// *cheapest tier with headroom that is strictly cheaper* than `from`
    /// — not "one level up". Equal-cost adjacent tiers therefore behave
    /// exactly like one merged tier (the metamorphic property the tier
    /// tests pin). `None` when no cheaper tier has room.
    fn promote_target(&self, from: u8) -> Option<u8> {
        let from_cost = self.tiers[from as usize].read_cost;
        (0..from as usize)
            .find(|&t| self.tiers[t].read_cost < from_cost && self.free_in(t) > 0)
            .map(|t| t as u8)
    }

    /// The tier a new or demoted page should land in when tier `from` has
    /// no headroom: the cheapest strictly-lower tier with room (index
    /// order is cost order). `None` when the whole stack below is full.
    fn spill_target(&self, from: u8) -> Option<u8> {
        (from as usize + 1..self.tiers.len())
            .find(|&t| self.free_in(t) > 0)
            .map(|t| t as u8)
    }

    /// Whether the heat policy allows promoting this page now. With heat
    /// disabled (legacy) every hit promotes, exactly as before.
    fn heat_allows_promotion(&self, meta: &PageMeta) -> bool {
        if !self.heat.enabled {
            return true;
        }
        let age = (self.access_clock as u32).wrapping_sub(meta.last);
        self.heat.decayed(meta.heat, age) >= self.heat.promote_min_heat
    }

    /// Apply one hit's heat update (no-op when the policy is disabled).
    fn bump_heat(&self, meta: &mut PageMeta, clock: u64) {
        if !self.heat.enabled {
            return;
        }
        let age = (clock as u32).wrapping_sub(meta.last);
        meta.heat = self.heat.bump(self.heat.decayed(meta.heat, age));
        meta.last = clock as u32;
    }

    /// Up to `max` DRAM-tier victim slots in deterministic reclaim order.
    /// Legacy policy: coldest namespace first (least-recently-accessed;
    /// ties break to the lower namespace id), slots ascending within a
    /// namespace. Heat policy: coldest page first by decayed heat, ties
    /// by (namespace, slot).
    ///
    /// Fork-aware: pages carrying a fork reference count are pinned
    /// (skipped). Relocation is driven by the owning namespace's client —
    /// which may already be gone for an owner-freed page — and every
    /// clone's demand-read path depends on the gold image staying where
    /// the fork found it, so shared pages stay put until the last
    /// reference drops.
    pub fn reclaim_victims(&self, max: usize) -> Vec<(NamespaceId, u32)> {
        if max == 0 || self.ledger.used(0) == 0 {
            return Vec::new();
        }
        if self.heat.enabled {
            let clock = self.access_clock as u32;
            let mut pages: Vec<(u16, u32, u32)> = self
                .store
                .iter()
                .filter(|(_, m)| m.tier == 0 && m.rc == 0)
                .map(|(&(ns, slot), m)| {
                    let age = clock.wrapping_sub(m.last);
                    (self.heat.decayed(m.heat, age), ns.0, slot)
                })
                .collect();
            pages.sort_unstable();
            pages.truncate(max);
            return pages
                .into_iter()
                .map(|(_, ns, slot)| (NamespaceId(ns), slot))
                .collect();
        }
        let mut by_ns: HashMap<NamespaceId, Vec<u32>> = HashMap::new();
        for (&(ns, slot), meta) in &self.store {
            if meta.tier == 0 && meta.rc == 0 {
                by_ns.entry(ns).or_default().push(slot);
            }
        }
        let mut order: Vec<NamespaceId> = by_ns.keys().copied().collect();
        order.sort_unstable_by_key(|ns| (self.ns_last_access.get(ns).copied().unwrap_or(0), ns.0));
        let mut out = Vec::with_capacity(max.min(self.ledger.used(0) as usize));
        for ns in order {
            let mut slots = by_ns.remove(&ns).expect("grouped above");
            slots.sort_unstable();
            for slot in slots {
                out.push((ns, slot));
                if out.len() == max {
                    return out;
                }
            }
        }
        out
    }

    /// Demote up to `max` victim slots (same order as
    /// [`VmdServer::reclaim_victims`]) from DRAM down the stack — each
    /// victim lands in the cheapest lower tier with headroom — bounded by
    /// total lower-tier headroom. Returns the demoted slots.
    pub fn demote_victims(&mut self, max: usize) -> Vec<(NamespaceId, u32)> {
        let room: u64 = (1..self.tiers.len()).map(|t| self.free_in(t)).sum();
        let victims = self.reclaim_victims(max.min(room as usize));
        for &(ns, slot) in &victims {
            let dest = self.spill_target(0).expect("bounded by headroom above");
            let entry = self.store.get_mut(&(ns, slot)).expect("victim exists");
            entry.tier = dest;
            self.ledger.transfer(0, dest as usize);
        }
        victims
    }

    /// Nominal per-page cost of demoting one more victim locally (the
    /// read cost of the tier the next victim would land in). `None` when
    /// every lower tier is full. The pool manager weighs this against the
    /// cost of relocating to another server's DRAM.
    pub fn best_demotion_cost(&self) -> Option<agile_sim_core::SimDuration> {
        self.spill_target(0)
            .map(|t| self.tiers[t as usize].read_cost)
    }

    /// Handle one client message. Returns the reply (and which tier did
    /// the work). A read of a never-written slot — which happens when this
    /// server crashed, lost its store, and rejoined — is answered with a
    /// [`ServerMsg::Nak`] so the client can fail over to another replica;
    /// same for a write that exceeds every tier.
    pub fn handle(&mut self, msg: ClientMsg) -> ServerReply {
        match msg {
            ClientMsg::ReadReq { ns, slot, req, .. } => {
                let Some(meta) = self.store.get(&(ns, slot)).copied() else {
                    return ServerReply {
                        msg: Some(ServerMsg::Nak {
                            req,
                            err: VmdError::UnwrittenSlot { ns, slot },
                            free_pages: self.free_pages(),
                            spill_free_pages: self.spill_free_pages(),
                        }),
                        tier: 0,
                    };
                };
                self.touch(ns);
                let tier = meta.tier;
                let mut updated = meta;
                self.bump_heat(&mut updated, self.access_clock);
                // A read hit below the head tier promotes the page to the
                // cheapest strictly-cheaper tier with headroom (demotion
                // without promotion wrecks repeat-access latency; the heat
                // policy, when enabled, gates this on decayed heat). The
                // promoting read still pays the serving tier's time — the
                // reply reports the original tier.
                if tier > 0 && self.heat_allows_promotion(&updated) {
                    if let Some(up) = self.promote_target(tier) {
                        updated.tier = up;
                        self.ledger.transfer(tier as usize, up as usize);
                    }
                }
                self.store.insert((ns, slot), updated);
                ServerReply {
                    msg: Some(ServerMsg::ReadResp {
                        req,
                        version: meta.version,
                        free_pages: self.free_pages(),
                    }),
                    tier,
                }
            }
            ClientMsg::WriteReq {
                ns,
                slot,
                version,
                req,
                rc,
                ..
            } => {
                let prior = self.store.get(&(ns, slot)).copied();
                let tier = match prior {
                    // Overwrite in place — but a slot stranded below the
                    // head tier while memory was full is promoted as soon
                    // as a cheaper tier has headroom again.
                    Some(meta) => {
                        let mut t = meta.tier;
                        if t > 0 && self.heat_allows_promotion(&meta) {
                            if let Some(up) = self.promote_target(t) {
                                self.ledger.transfer(t as usize, up as usize);
                                t = up;
                            }
                        }
                        t
                    }
                    None => {
                        // New write: head tier first, else spill down the
                        // stack to the cheapest tier with headroom.
                        let dest = if self.free_in(0) > 0 {
                            Some(0u8)
                        } else {
                            self.spill_target(0)
                        };
                        match dest {
                            Some(t) => {
                                self.ledger.add(t as usize);
                                self.note_insert(ns);
                                t
                            }
                            None => {
                                // Every tier full (stale availability view
                                // at the client): refuse so the client
                                // re-places.
                                return ServerReply {
                                    msg: Some(ServerMsg::Nak {
                                        req,
                                        err: VmdError::OutOfCapacity { ns, slot },
                                        free_pages: 0,
                                        spill_free_pages: 0,
                                    }),
                                    tier: 0,
                                };
                            }
                        }
                    }
                };
                self.touch(ns);
                debug_assert!(
                    prior.is_none_or(|m| !m.owner_freed),
                    "overwrite of an owner-freed shared page"
                );
                let mut meta = PageMeta {
                    version,
                    tier,
                    heat: prior.map(|m| m.heat).unwrap_or(0),
                    last: prior.map(|m| m.last).unwrap_or(self.access_clock as u32),
                    // A fresh copy (repair/relocation of a shared master
                    // page) lands with the exact count from the header; an
                    // overwrite keeps the count this server already tracks.
                    rc: prior.map(|m| m.rc).unwrap_or(rc),
                    owner_freed: prior.map(|m| m.owner_freed).unwrap_or(false),
                };
                // Only overwrite *hits* accrue heat; the initial store of a
                // page says nothing about its future access rate.
                if prior.is_some() {
                    self.bump_heat(&mut meta, self.access_clock);
                }
                self.store.insert((ns, slot), meta);
                ServerReply {
                    msg: Some(ServerMsg::WriteAck {
                        req,
                        free_pages: self.free_pages(),
                    }),
                    tier,
                }
            }
            ClientMsg::Free { ns, slot } => {
                // A page still referenced by clone namespaces defers its
                // release: mark it owner-freed; the last DropRef frees it.
                if let Some(meta) = self.store.get_mut(&(ns, slot)) {
                    if meta.rc > 0 {
                        meta.owner_freed = true;
                        let tier = meta.tier;
                        return ServerReply { msg: None, tier };
                    }
                }
                let tier = if let Some(meta) = self.store.remove(&(ns, slot)) {
                    self.ledger.remove(meta.tier as usize);
                    self.note_remove(ns);
                    meta.tier
                } else {
                    0
                };
                ServerReply { msg: None, tier }
            }
            ClientMsg::NsFork { master } => {
                // A clone now shares every page of the master's gold image
                // this server holds. Order-independent value updates only —
                // safe over the hash map.
                for ((ns, _), meta) in self.store.iter_mut() {
                    if *ns == master {
                        meta.rc += 1;
                    }
                }
                ServerReply { msg: None, tier: 0 }
            }
            ClientMsg::DropRef { ns, slot } => {
                let mut freed_tier = 0;
                if let Some(meta) = self.store.get_mut(&(ns, slot)) {
                    meta.rc = meta.rc.saturating_sub(1);
                    if meta.rc == 0 && meta.owner_freed {
                        let meta = self.store.remove(&(ns, slot)).expect("present above");
                        self.ledger.remove(meta.tier as usize);
                        self.note_remove(ns);
                        freed_tier = meta.tier;
                    }
                }
                ServerReply {
                    msg: None,
                    tier: freed_tier,
                }
            }
        }
    }

    /// Crash: the host died and its DRAM (and, in our model, spill-tier
    /// contents) are gone. Capacity (and the current lease) is retained
    /// for when the host rejoins empty. Returns the number of pages lost.
    pub fn crash_reset(&mut self) -> u64 {
        let lost = self.stored_pages();
        self.store.clear();
        self.ledger.clear();
        self.ns_last_access.clear();
        self.ns_pages.clear();
        lost
    }

    /// Drop every slot of a namespace (the VM was destroyed, not migrated).
    /// Returns the number of pages released. Fork-aware: pages still
    /// referenced by clone namespaces are retained (marked owner-freed)
    /// and released by their last [`ClientMsg::DropRef`] instead.
    pub fn purge_namespace(&mut self, ns: NamespaceId) -> u64 {
        let before = self.stored_pages();
        let ledger = &mut self.ledger;
        let mut retained = 0u64;
        self.store.retain(|(n, _), meta| {
            if *n != ns {
                return true;
            }
            if meta.rc > 0 {
                meta.owner_freed = true;
                retained += 1;
                return true;
            }
            ledger.remove(meta.tier as usize);
            false
        });
        if retained > 0 {
            self.ns_pages.insert(ns, retained);
        } else {
            self.ns_pages.remove(&ns);
            self.ns_last_access.remove(&ns);
        }
        before - self.stored_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ClientId;
    use crate::tier::TierSpec;
    use agile_sim_core::SimDuration;

    fn write(ns: u32, slot: u32, version: u32, req: u64) -> ClientMsg {
        ClientMsg::WriteReq {
            from: ClientId(0),
            ns: NamespaceId(ns),
            slot,
            version,
            req,
            rc: 0,
        }
    }

    fn read(ns: u32, slot: u32, req: u64) -> ClientMsg {
        ClientMsg::ReadReq {
            from: ClientId(0),
            ns: NamespaceId(1),
            slot,
            req,
        }
        .retag(ns)
    }

    // Helper so the `read` constructor above stays one expression.
    trait Retag {
        fn retag(self, ns: u32) -> Self;
    }
    impl Retag for ClientMsg {
        fn retag(mut self, new_ns: u32) -> Self {
            if let ClientMsg::ReadReq { ref mut ns, .. } = self {
                *ns = NamespaceId(new_ns);
            }
            self
        }
    }

    /// A three-tier stack: 2 DRAM pages, 2 far-memory pages, 4 SSD pages.
    fn tiered_server() -> VmdServer {
        let stack = TierStackConfig::new(
            &[
                TierSpec::dram(),
                TierSpec::far_memory(2, SimDuration::from_micros(2), u64::MAX, 4096),
                TierSpec::host_ssd(),
            ],
            HeatPolicy::default(),
        );
        VmdServer::with_tiers(ServerId(0), stack.resolve(2, 4), HeatPolicy::default())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = VmdServer::new(ServerId(0), 100, 0);
        let r = s.handle(write(1, 5, 42, 7));
        assert_eq!(
            r.msg,
            Some(ServerMsg::WriteAck {
                req: 7,
                free_pages: 99
            })
        );
        let r = s.handle(read(1, 5, 8));
        match r.msg {
            Some(ServerMsg::ReadResp { req, version, .. }) => {
                assert_eq!(req, 8);
                assert_eq!(version, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_allocated_only_on_write() {
        let s = VmdServer::new(ServerId(0), 100, 0);
        assert_eq!(s.free_pages(), 100);
        assert_eq!(s.stored_pages(), 0);
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 0, 2, 2));
        assert_eq!(s.stored_pages(), 1);
        match s.handle(read(1, 0, 3)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 11, 1));
        s.handle(write(2, 0, 22, 2));
        match s.handle(read(1, 0, 3)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 11),
            other => panic!("{other:?}"),
        }
        match s.handle(read(2, 0, 4)).msg {
            Some(ServerMsg::ReadResp { version, .. }) => assert_eq!(version, 22),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spills_to_disk_when_memory_full() {
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        assert_eq!(s.handle(write(1, 0, 1, 1)).tier, 0);
        assert_eq!(s.handle(write(1, 1, 1, 2)).tier, 1);
        assert!(s.memory_full());
        assert_eq!(s.disk_pages(), 1);
        // Reads report the tier so the executor can charge device time.
        assert_eq!(s.handle(read(1, 1, 3)).tier, 1);
        assert_eq!(s.handle(read(1, 0, 4)).tier, 0);
    }

    #[test]
    fn free_releases_capacity() {
        let mut s = VmdServer::new(ServerId(0), 1, 0);
        s.handle(write(1, 0, 1, 1));
        assert!(s.memory_full());
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        assert!(!s.memory_full());
        assert_eq!(s.free_pages(), 1);
    }

    #[test]
    fn purge_namespace_only_touches_that_namespace() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        s.handle(write(2, 0, 1, 3));
        assert_eq!(s.purge_namespace(NamespaceId(1)), 2);
        assert_eq!(s.stored_pages(), 1);
        assert_eq!(
            s.pages_per_namespace(),
            vec![(NamespaceId(2), 1)],
            "per-namespace accounting follows the purge"
        );
        assert!(s.ledger_consistent());
    }

    #[test]
    fn read_of_unwritten_slot_naks() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        let r = s.handle(read(1, 99, 1));
        assert_eq!(
            r.msg,
            Some(ServerMsg::Nak {
                req: 1,
                err: VmdError::UnwrittenSlot {
                    ns: NamespaceId(1),
                    slot: 99,
                },
                free_pages: 10,
                spill_free_pages: 0,
            })
        );
    }

    #[test]
    fn overflow_write_naks_without_storing() {
        let mut s = VmdServer::new(ServerId(0), 1, 0);
        s.handle(write(1, 0, 1, 1));
        let r = s.handle(write(1, 1, 1, 2));
        assert!(matches!(
            r.msg,
            Some(ServerMsg::Nak {
                req: 2,
                err: VmdError::OutOfCapacity { .. },
                ..
            })
        ));
        assert_eq!(s.stored_pages(), 1);
    }

    #[test]
    fn crash_reset_loses_contents_keeps_capacity() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        assert_eq!(s.crash_reset(), 2);
        assert_eq!(s.free_pages(), 10);
        assert!(s.pages_per_namespace().is_empty());
        // A rejoined server no longer has the page: read NAKs.
        assert!(matches!(
            s.handle(read(1, 0, 3)).msg,
            Some(ServerMsg::Nak { .. })
        ));
    }

    #[test]
    fn availability_reports_free() {
        let mut s = VmdServer::new(ServerId(3), 5, 0);
        s.handle(write(1, 0, 1, 1));
        assert_eq!(
            s.availability(),
            ServerMsg::Availability {
                server: ServerId(3),
                free_pages: 4,
                spill_free_pages: 0,
            }
        );
    }

    #[test]
    fn availability_reports_spill_headroom() {
        let mut s = VmdServer::new(ServerId(3), 1, 3);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2)); // spills
        assert_eq!(
            s.availability(),
            ServerMsg::Availability {
                server: ServerId(3),
                free_pages: 0,
                spill_free_pages: 2,
            }
        );
    }

    #[test]
    fn overwrite_promotes_stranded_disk_page() {
        // Regression: a slot written while memory was full used to stay on
        // the disk tier forever, even after DRAM freed up.
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        s.handle(write(1, 0, 1, 1)); // fills DRAM
        assert_eq!(s.handle(write(1, 1, 1, 2)).tier, 1);
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        // Overwrite with DRAM headroom: the page moves up.
        assert_eq!(s.handle(write(1, 1, 2, 3)).tier, 0);
        assert_eq!(s.disk_pages(), 0);
        assert_eq!(s.handle(read(1, 1, 4)).tier, 0);
    }

    #[test]
    fn read_hit_promotes_stranded_disk_page() {
        let mut s = VmdServer::new(ServerId(0), 1, 4);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2)); // spills
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        // The promoting read itself still pays the disk time…
        assert_eq!(s.handle(read(1, 1, 3)).tier, 1);
        // …but the page now lives in DRAM.
        assert_eq!(s.disk_pages(), 0);
        assert_eq!(s.handle(read(1, 1, 4)).tier, 0);
    }

    #[test]
    fn lease_caps_free_pages_and_placements() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(1, 0, 1, 1));
        s.handle(write(1, 1, 1, 2));
        assert_eq!(s.free_pages(), 8);
        assert_eq!(s.set_lease(5), 5);
        // Gossip and replies advertise leased capacity (satellite fix).
        assert_eq!(s.free_pages(), 3);
        assert_eq!(
            s.availability(),
            ServerMsg::Availability {
                server: ServerId(0),
                free_pages: 3,
                spill_free_pages: 0,
            }
        );
        // The lease clamps to the raw capacity.
        assert_eq!(s.set_lease(20), 10);
    }

    #[test]
    fn shrunk_lease_rejects_new_writes() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.set_lease(1);
        assert_eq!(s.handle(write(1, 0, 1, 1)).tier, 0);
        // Raw capacity has room, the lease does not: NAK, not store.
        assert!(matches!(
            s.handle(write(1, 1, 1, 2)).msg,
            Some(ServerMsg::Nak {
                err: VmdError::OutOfCapacity { .. },
                ..
            })
        ));
        assert_eq!(s.stored_pages(), 1);
    }

    #[test]
    fn over_lease_tracks_reclaim_backlog() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        for slot in 0..4 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        assert_eq!(s.over_lease_pages(), 0);
        s.set_lease(1);
        assert_eq!(s.over_lease_pages(), 3);
        assert_eq!(s.free_pages(), 0);
    }

    #[test]
    fn reclaim_victims_coldest_namespace_first() {
        let mut s = VmdServer::new(ServerId(0), 10, 0);
        s.handle(write(2, 5, 1, 1));
        s.handle(write(2, 3, 1, 2));
        s.handle(write(1, 7, 1, 3));
        // Namespace 2 was touched again: it is now the hottest.
        s.handle(read(2, 3, 4));
        let victims = s.reclaim_victims(3);
        assert_eq!(
            victims,
            vec![
                (NamespaceId(1), 7),
                (NamespaceId(2), 3),
                (NamespaceId(2), 5),
            ],
            "coldest namespace first, slots ascending"
        );
        assert_eq!(s.reclaim_victims(1), vec![(NamespaceId(1), 7)]);
    }

    #[test]
    fn demote_victims_moves_pages_to_disk() {
        let mut s = VmdServer::new(ServerId(0), 4, 2);
        for slot in 0..4 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        s.set_lease(1);
        assert_eq!(s.over_lease_pages(), 3);
        // Bounded by disk headroom (2), not by the request (3).
        let demoted = s.demote_victims(3);
        assert_eq!(demoted.len(), 2);
        assert_eq!(s.disk_pages(), 2);
        assert_eq!(s.over_lease_pages(), 1);
        assert_eq!(s.stored_pages(), 4, "demotion preserves contents");
        assert_eq!(s.pages_per_namespace(), vec![(NamespaceId(1), 4)]);
    }

    #[test]
    fn lease_update_reports_lease_and_free() {
        let mut s = VmdServer::new(ServerId(2), 8, 0);
        s.handle(write(1, 0, 1, 1));
        s.set_lease(4);
        assert_eq!(
            s.lease_update(),
            ServerMsg::LeaseUpdate {
                server: ServerId(2),
                lease_pages: 4,
                free_pages: 3,
            }
        );
    }

    // ----------------------- tier-stack behavior -----------------------

    #[test]
    fn writes_spill_down_the_stack_in_cost_order() {
        let mut s = tiered_server();
        assert_eq!(s.handle(write(1, 0, 1, 1)).tier, 0);
        assert_eq!(s.handle(write(1, 1, 1, 2)).tier, 0);
        // DRAM full → far memory (cheapest spill tier) first…
        assert_eq!(s.handle(write(1, 2, 1, 3)).tier, 1);
        assert_eq!(s.handle(write(1, 3, 1, 4)).tier, 1);
        // …then SSD once far memory is full.
        assert_eq!(s.handle(write(1, 4, 1, 5)).tier, 2);
        assert_eq!(s.tier_used_pages(0), 2);
        assert_eq!(s.tier_used_pages(1), 2);
        assert_eq!(s.tier_used_pages(2), 1);
        assert_eq!(s.spill_free_pages(), 3);
        assert!(s.ledger_consistent());
    }

    #[test]
    fn promotion_targets_cheapest_cheaper_tier_not_one_level_up() {
        let mut s = tiered_server();
        for slot in 0..5 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        // Slot 4 sits on SSD (tier 2). Free a DRAM page: the next hit on
        // slot 4 must promote straight to DRAM (tier 0), skipping the full
        // far-memory tier.
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        assert_eq!(s.handle(read(1, 4, 10)).tier, 2, "read pays SSD time");
        assert_eq!(s.handle(read(1, 4, 11)).tier, 0, "page now in DRAM");
        assert!(s.ledger_consistent());
    }

    #[test]
    fn heat_policy_gates_promotion_until_threshold() {
        let stack = TierStackConfig::new(
            &[
                TierSpec::dram(),
                TierSpec::far_memory(4, SimDuration::from_micros(2), u64::MAX, 4096),
            ],
            HeatPolicy::heat_driven(),
        );
        let mut s = VmdServer::with_tiers(ServerId(0), stack.resolve(1, 0), stack.heat);
        s.handle(write(1, 0, 1, 1)); // DRAM
        s.handle(write(1, 1, 1, 2)); // far memory
        s.handle(ClientMsg::Free {
            ns: NamespaceId(1),
            slot: 0,
        });
        // First hit: heat 16 < 24 — stays put despite DRAM headroom.
        assert_eq!(s.handle(read(1, 1, 3)).tier, 1);
        assert_eq!(s.handle(read(1, 1, 4)).tier, 1, "second hit crosses 24");
        // Heat reached 28 on that hit → promoted; third hit served from DRAM.
        assert_eq!(s.handle(read(1, 1, 5)).tier, 0);
        assert!(s.ledger_consistent());
    }

    #[test]
    fn heat_reclaim_orders_coldest_pages_first() {
        let stack = TierStackConfig::new(
            &[TierSpec::dram(), TierSpec::host_ssd()],
            HeatPolicy::heat_driven(),
        );
        let mut s = VmdServer::with_tiers(ServerId(0), stack.resolve(10, 10), stack.heat);
        for slot in 0..3 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        // Heat up slot 1 hard, slot 2 a little.
        for req in 10..15 {
            s.handle(read(1, 1, req));
        }
        s.handle(read(1, 2, 20));
        let victims = s.reclaim_victims(3);
        assert_eq!(victims[0], (NamespaceId(1), 0), "never-read page coldest");
        assert_eq!(victims[2], (NamespaceId(1), 1), "hottest page last");
    }

    #[test]
    fn best_demotion_cost_tracks_next_spill_tier() {
        let mut s = tiered_server();
        let far_cost = s.tiers[1].read_cost;
        assert_eq!(s.best_demotion_cost(), Some(far_cost));
        for slot in 0..4 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        // Far memory full → next demotion lands on SSD.
        assert_eq!(s.best_demotion_cost(), Some(crate::tier::NOMINAL_SSD_READ));
    }

    /// Satellite-1 regression: a purge racing a demotion pipeline must
    /// leave the ledger consistent with the store — the historical raw
    /// counters could drift (and wrap) because each path adjusted them
    /// independently.
    #[test]
    fn purge_racing_demotion_keeps_ledger_consistent() {
        let mut s = VmdServer::new(ServerId(0), 4, 4);
        for slot in 0..4 {
            s.handle(write(1, slot, 1, u64::from(slot)));
        }
        s.handle(write(2, 0, 1, 10));
        s.set_lease(1);
        let demoted = s.demote_victims(8);
        assert!(!demoted.is_empty());
        // Purge the namespace mid-pipeline, then replay the stale frees a
        // crashed client might still emit for already-purged slots.
        s.purge_namespace(NamespaceId(1));
        assert!(s.ledger_consistent());
        for slot in 0..4 {
            s.handle(ClientMsg::Free {
                ns: NamespaceId(1),
                slot,
            });
        }
        assert!(s.ledger_consistent(), "stale frees must not underflow");
        assert_eq!(s.stored_pages(), 1);
        assert_eq!(s.pages_per_namespace(), vec![(NamespaceId(2), 1)]);
        s.crash_reset();
        assert!(s.ledger_consistent());
    }
}
