//! VMD client module (runs on source and destination hosts).
//!
//! The client exports each namespace as a block device to the Migration
//! Manager; underneath it routes page reads/writes to intermediate servers.
//! Writes choose a server with the paper's **load-aware round-robin**: walk
//! the server ring from the cursor and pick the first server that reports
//! unused memory. Reads consult the shared namespace directory.
//!
//! The client is sans-IO: requests it wants transmitted accumulate in an
//! *outbox* of `(ServerId, ClientMsg)` that the cluster executor drains
//! onto the simulated network; responses are fed back through
//! [`VmdClient::on_server_msg`], which returns I/O completions.
//!
//! A small writeback buffer holds issued-but-unacked writes; a read of such
//! a slot is served locally (the data is still in client memory), which
//! mirrors real swap-cache/writeback behaviour and avoids a protocol race
//! where a read could overtake its write on a different TCP connection.

use std::collections::{HashMap, VecDeque};

use crate::directory::VmdDirectory;
use crate::proto::{ClientId, ClientMsg, NamespaceId, ServerId, ServerMsg};

/// How a client read will complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadIssue {
    /// Served from the local writeback buffer; `version` is the content.
    Local {
        /// Content version of the locally-buffered page.
        version: u32,
    },
    /// A `ReadReq` was queued in the outbox; completion arrives later via
    /// [`VmdClient::on_server_msg`].
    Sent,
}

/// An asynchronous completion surfaced by [`VmdClient::on_server_msg`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmdCompletion {
    /// A read finished; `version` is the page content token.
    ReadDone {
        /// Request id passed to [`VmdClient::read`].
        req: u64,
        /// Stored content version.
        version: u32,
    },
    /// A write was acknowledged by its server.
    WriteDone {
        /// Request id passed to [`VmdClient::write`].
        req: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct ServerInfo {
    id: ServerId,
    /// Client's (possibly stale) view of the server's free pages,
    /// optimistically decremented on issued writes and corrected by
    /// acks/gossip.
    free_pages: u64,
}

/// One host's VMD client.
#[derive(Clone, Debug)]
pub struct VmdClient {
    id: ClientId,
    servers: Vec<ServerInfo>,
    rr: usize,
    outbox: VecDeque<(ServerId, ClientMsg)>,
    pending_reads: HashMap<u64, ()>,
    pending_writes: HashMap<u64, (NamespaceId, u32)>,
    /// (ns, slot) → (version, latest write req).
    writeback: HashMap<(NamespaceId, u32), (u32, u64)>,
}

impl VmdClient {
    /// Create a client that knows about `servers` with their initial
    /// advertised capacities.
    pub fn new(id: ClientId, servers: impl IntoIterator<Item = (ServerId, u64)>) -> Self {
        VmdClient {
            id,
            servers: servers
                .into_iter()
                .map(|(id, free_pages)| ServerInfo { id, free_pages })
                .collect(),
            rr: 0,
            outbox: VecDeque::new(),
            pending_reads: HashMap::new(),
            pending_writes: HashMap::new(),
            writeback: HashMap::new(),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Learn about a server that joined after this client was created
    /// (idempotent; updates the advertised capacity if already known).
    pub fn add_server(&mut self, id: ServerId, free_pages: u64) {
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == id) {
            info.free_pages = free_pages;
        } else {
            self.servers.push(ServerInfo { id, free_pages });
        }
    }

    /// Messages awaiting transmission (drained by the cluster executor).
    pub fn drain_outbox(&mut self) -> impl Iterator<Item = (ServerId, ClientMsg)> + '_ {
        self.outbox.drain(..)
    }

    /// True if transmissions are pending.
    pub fn has_outbox(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Number of reads/writes in flight.
    pub fn inflight(&self) -> usize {
        self.pending_reads.len() + self.pending_writes.len()
    }

    /// Issue a page read. The directory must know the slot (i.e. it was
    /// written before) unless it sits in the local writeback buffer.
    pub fn read(&mut self, dir: &VmdDirectory, ns: NamespaceId, slot: u32, req: u64) -> ReadIssue {
        if let Some(&(version, _)) = self.writeback.get(&(ns, slot)) {
            return ReadIssue::Local { version };
        }
        let server = dir
            .lookup(ns, slot)
            .unwrap_or_else(|| panic!("read of unplaced slot ({ns:?}, {slot})"));
        self.pending_reads.insert(req, ());
        self.outbox.push_back((
            server,
            ClientMsg::ReadReq {
                from: self.id,
                ns,
                slot,
                req,
            },
        ));
        ReadIssue::Sent
    }

    /// Issue a page write. Chooses (and records) a server with load-aware
    /// round-robin on first write of a slot; overwrites go to the original
    /// server.
    pub fn write(
        &mut self,
        dir: &mut VmdDirectory,
        ns: NamespaceId,
        slot: u32,
        version: u32,
        req: u64,
    ) {
        let server = match dir.lookup(ns, slot) {
            Some(s) => s,
            None => {
                let s = self.pick_server();
                dir.record(ns, slot, s);
                // Optimistic accounting: the page will occupy a server page.
                if let Some(info) = self.servers.iter_mut().find(|i| i.id == s) {
                    info.free_pages = info.free_pages.saturating_sub(1);
                }
                s
            }
        };
        self.writeback.insert((ns, slot), (version, req));
        self.pending_writes.insert(req, (ns, slot));
        self.outbox.push_back((
            server,
            ClientMsg::WriteReq {
                from: self.id,
                ns,
                slot,
                version,
                req,
            },
        ));
    }

    /// Free a slot: tells its server and forgets the placement.
    pub fn free(&mut self, dir: &mut VmdDirectory, ns: NamespaceId, slot: u32) {
        self.writeback.remove(&(ns, slot));
        if let Some(server) = dir.forget(ns, slot) {
            if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
                info.free_pages += 1;
            }
            self.outbox
                .push_back((server, ClientMsg::Free { ns, slot }));
        }
    }

    /// Load-aware round-robin: next server in ring order that reports
    /// unused memory. When every server reports full DRAM, placement falls
    /// back to plain round-robin — servers with a disk spill tier (§IV-A's
    /// HD/SSD extension) absorb the overflow there.
    fn pick_server(&mut self) -> ServerId {
        assert!(!self.servers.is_empty(), "VMD has no servers");
        let n = self.servers.len();
        for step in 0..n {
            let idx = (self.rr + step) % n;
            if self.servers[idx].free_pages > 0 {
                self.rr = (idx + 1) % n;
                return self.servers[idx].id;
            }
        }
        let idx = self.rr % n;
        self.rr = (idx + 1) % n;
        self.servers[idx].id
    }

    /// Feed a server's reply (or gossip) back in; returns completions to
    /// surface to the Migration Manager / swap layer.
    pub fn on_server_msg(&mut self, from: ServerId, msg: ServerMsg) -> Option<VmdCompletion> {
        match msg {
            ServerMsg::ReadResp {
                req,
                version,
                free_pages,
            } => {
                self.update_availability(from, free_pages);
                self.pending_reads
                    .remove(&req)
                    .unwrap_or_else(|| panic!("unknown read req {req}"));
                Some(VmdCompletion::ReadDone { req, version })
            }
            ServerMsg::WriteAck { req, free_pages } => {
                self.update_availability(from, free_pages);
                let (ns, slot) = self
                    .pending_writes
                    .remove(&req)
                    .unwrap_or_else(|| panic!("unknown write req {req}"));
                // Only the latest write of a slot clears the writeback
                // entry; an ack for a superseded write must not expose a
                // stale read-through.
                if let Some(&(_, latest_req)) = self.writeback.get(&(ns, slot)) {
                    if latest_req == req {
                        self.writeback.remove(&(ns, slot));
                    }
                }
                Some(VmdCompletion::WriteDone { req })
            }
            ServerMsg::Availability { server, free_pages } => {
                self.update_availability(server, free_pages);
                None
            }
        }
    }

    fn update_availability(&mut self, server: ServerId, free_pages: u64) {
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
            // Don't let gossip *raise* free pages above what our optimistic
            // in-flight accounting implies; untransmitted writes still land.
            let inflight_to_server = self
                .outbox
                .iter()
                .filter(|(s, m)| *s == server && matches!(m, ClientMsg::WriteReq { .. }))
                .count() as u64;
            info.free_pages = free_pages.saturating_sub(inflight_to_server);
        }
    }

    /// The client's current view of a server's free pages (tests).
    pub fn known_free(&self, server: ServerId) -> Option<u64> {
        self.servers
            .iter()
            .find(|i| i.id == server)
            .map(|i| i.free_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(free: &[u64]) -> (VmdClient, VmdDirectory) {
        let servers = free
            .iter()
            .enumerate()
            .map(|(i, &f)| (ServerId(i as u32), f));
        (VmdClient::new(ClientId(0), servers), VmdDirectory::new())
    }

    #[test]
    fn writes_round_robin_across_servers() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = d.create_namespace();
        for slot in 0..6 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(
            targets,
            vec![
                ServerId(0),
                ServerId(1),
                ServerId(2),
                ServerId(0),
                ServerId(1),
                ServerId(2)
            ]
        );
    }

    #[test]
    fn full_servers_are_skipped() {
        let (mut c, mut d) = setup(&[0, 5, 0]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        c.write(&mut d, ns, 1, 1, 2);
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(targets, vec![ServerId(1), ServerId(1)]);
    }

    #[test]
    fn overwrite_goes_to_original_server() {
        let (mut c, mut d) = setup(&[10, 10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        let first: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        // Ack it so the writeback entry clears.
        c.on_server_msg(
            first[0],
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        c.write(&mut d, ns, 0, 2, 2);
        let second: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(first, second, "overwrite must not move the slot");
    }

    #[test]
    fn read_of_unacked_write_is_local() {
        let (mut c, mut d) = setup(&[10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 3, 7, 1);
        assert_eq!(
            c.read(&d, ns, 3, 2),
            ReadIssue::Local { version: 7 },
            "writeback buffer serves the read"
        );
        // After the ack, reads go to the network.
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 3, 3), ReadIssue::Sent);
        let msgs: Vec<ClientMsg> = c.drain_outbox().map(|(_, m)| m).collect();
        assert!(matches!(msgs[0], ClientMsg::ReadReq { slot: 3, .. }));
    }

    #[test]
    fn superseding_write_keeps_writeback_until_its_own_ack() {
        let (mut c, mut d) = setup(&[10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        c.write(&mut d, ns, 0, 2, 2); // supersedes before ack
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        // Old ack must not clear the newer buffered version.
        assert_eq!(c.read(&d, ns, 0, 9), ReadIssue::Local { version: 2 });
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 2,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 10), ReadIssue::Sent);
    }

    #[test]
    fn read_completion_roundtrip() {
        let (mut c, mut d) = setup(&[10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 42, 1);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 2), ReadIssue::Sent);
        let done = c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: 2,
                version: 42,
                free_pages: 9,
            },
        );
        assert_eq!(
            done,
            Some(VmdCompletion::ReadDone {
                req: 2,
                version: 42
            })
        );
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn availability_gossip_updates_view() {
        let (mut c, _) = setup(&[10]);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::Availability {
                server: ServerId(0),
                free_pages: 3,
            },
        );
        assert_eq!(c.known_free(ServerId(0)), Some(3));
    }

    #[test]
    fn optimistic_accounting_prevents_overcommit() {
        let (mut c, mut d) = setup(&[2, 2]);
        let ns = d.create_namespace();
        // 4 writes exactly fill both servers in the client's view.
        for slot in 0..4 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        assert_eq!(c.known_free(ServerId(0)), Some(0));
        assert_eq!(c.known_free(ServerId(1)), Some(0));
    }

    #[test]
    fn full_pool_falls_back_to_round_robin() {
        // Every server reports full DRAM: writes still place (the server's
        // disk spill tier absorbs them), cycling the ring.
        let (mut c, mut d) = setup(&[1, 1]);
        let ns = d.create_namespace();
        for slot in 0..4 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(targets.len(), 4);
        // After the two free slots are consumed, placement keeps cycling.
        assert_ne!(targets[2], targets[3], "fallback must round-robin");
    }

    #[test]
    fn free_returns_capacity_and_notifies_server() {
        let (mut c, mut d) = setup(&[1]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        c.drain_outbox().for_each(drop);
        c.free(&mut d, ns, 0);
        assert_eq!(c.known_free(ServerId(0)), Some(1));
        let msgs: Vec<ClientMsg> = c.drain_outbox().map(|(_, m)| m).collect();
        assert!(matches!(msgs[0], ClientMsg::Free { slot: 0, .. }));
        // And the slot can be written again.
        c.write(&mut d, ns, 1, 1, 2);
    }
}
