//! VMD client module (runs on source and destination hosts).
//!
//! The client exports each namespace as a block device to the Migration
//! Manager; underneath it routes page reads/writes to intermediate servers.
//! Writes choose a server with the paper's **load-aware round-robin**: walk
//! the server ring from the cursor and pick the first server that reports
//! unused memory. Reads consult the shared namespace directory.
//!
//! The client is sans-IO: requests it wants transmitted accumulate in an
//! *outbox* of `(ServerId, ClientMsg)` that the cluster executor drains
//! onto the simulated network; responses are fed back through
//! [`VmdClient::on_server_msg`], which returns I/O completions.
//!
//! A small writeback buffer holds issued-but-unacked writes; a read of such
//! a slot is served locally (the data is still in client memory), which
//! mirrors real swap-cache/writeback behaviour and avoids a protocol race
//! where a read could overtake its write on a different TCP connection.
//!
//! ## Failure handling
//!
//! With `set_replication(k)`, first writes of a slot fan out to `k`
//! distinct servers (deterministic ring order); overwrites go to the
//! slot's existing replicas. Servers can be marked **suspect** (crashed,
//! per the cluster's failure detector); suspect servers are skipped by
//! placement and reads, pending requests aimed at them fail over to
//! surviving replicas ([`VmdClient::mark_suspect`]), and a slot whose
//! every replica is gone surfaces as a typed [`VmdError::LostSlot`] —
//! counted, never panicked. Availability gossip from a server clears its
//! suspect mark (rejoin). Background re-replication
//! ([`VmdClient::begin_repair`] / [`VmdClient::repair_write`]) restores
//! the replication factor after a crash.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::directory::{ReplicaSet, VmdDirectory};
use crate::proto::{ClientId, ClientMsg, NamespaceId, ServerId, ServerMsg, VmdError};

/// Client-generated request ids (replica writes, repair traffic) live above
/// this bound so they never collide with executor-assigned ids.
const INTERNAL_REQ_BASE: u64 = 1 << 62;

/// How a client read will complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadIssue {
    /// Served from the local writeback buffer; `version` is the content.
    Local {
        /// Content version of the locally-buffered page.
        version: u32,
    },
    /// A `ReadReq` was queued in the outbox; completion arrives later via
    /// [`VmdClient::on_server_msg`].
    Sent,
    /// The read cannot be served: no live replica holds the slot. The
    /// failure is data, not a panic — the caller decides how to degrade.
    Failed(VmdError),
}

/// An asynchronous completion surfaced by [`VmdClient::on_server_msg`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmdCompletion {
    /// A read finished; `version` is the page content token.
    ReadDone {
        /// Request id passed to [`VmdClient::read`].
        req: u64,
        /// Stored content version.
        version: u32,
    },
    /// A write was acknowledged by its (primary) server.
    WriteDone {
        /// Request id passed to [`VmdClient::write`].
        req: u64,
    },
    /// A read ran out of replicas to try; the slot's data is lost.
    ReadFailed {
        /// Request id passed to [`VmdClient::read`].
        req: u64,
        /// The underlying failure.
        err: VmdError,
    },
    /// A server NAKed this read; the executor should call
    /// [`VmdClient::read_failover`] with directory access.
    ReadNak {
        /// The NAKed request id.
        req: u64,
    },
    /// A server NAKed this write; the executor should call
    /// [`VmdClient::write_failover`] with directory access.
    WriteNak {
        /// The NAKed request id.
        req: u64,
    },
    /// A repair read completed; the executor should call
    /// [`VmdClient::repair_write`] to copy the page to a new replica.
    RepairRead {
        /// Namespace being repaired.
        ns: NamespaceId,
        /// Slot being repaired.
        slot: u32,
        /// Content version read from the surviving replica.
        version: u32,
    },
    /// A relocation read completed; the executor should call
    /// [`VmdClient::relocate_write`] to copy the page toward its new
    /// server.
    RelocateRead {
        /// Namespace being relocated.
        ns: NamespaceId,
        /// Slot being relocated.
        slot: u32,
        /// Content version read from the source replica.
        version: u32,
        /// The replica being vacated.
        from: ServerId,
    },
    /// A relocation copy was acked; the executor should call
    /// [`VmdClient::finish_relocation`] to swap the directory entry and
    /// free the source copy.
    RelocateDone {
        /// Namespace being relocated.
        ns: NamespaceId,
        /// Slot being relocated.
        slot: u32,
        /// The replica being vacated.
        from: ServerId,
        /// The replica that now holds the copy.
        to: ServerId,
    },
    /// A relocation was abandoned (source crashed mid-read, the copy's
    /// destination failed, or a fresh overwrite superseded it); the pool
    /// manager may pick the slot again on a later tick.
    RelocateAbort {
        /// Namespace whose relocation was dropped.
        ns: NamespaceId,
        /// Slot whose relocation was dropped.
        slot: u32,
    },
}

#[derive(Clone, Copy, Debug)]
struct ServerInfo {
    id: ServerId,
    /// Client's (possibly stale) view of the server's free pages,
    /// optimistically decremented on issued writes and corrected by
    /// acks/gossip.
    free_pages: u64,
    /// View of the server's free *spill-tier* capacity (pages below its
    /// DRAM head tier), from availability gossip. Placement uses it to
    /// prefer servers that can still absorb writes once every server's
    /// leased DRAM is full.
    spill_free: u64,
    /// True while the failure detector considers the server crashed.
    suspect: bool,
}

/// Why a pending read was issued.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReadPurpose {
    /// Ordinary swap read: completion goes to the swap layer.
    Swap,
    /// Re-replication read: completion triggers a repair write.
    Repair,
    /// Lease-reclaim/rebalance read, pinned to the replica being vacated:
    /// completion triggers a relocation write.
    Relocate,
}

#[derive(Clone, Copy, Debug)]
struct PendingRead {
    ns: NamespaceId,
    slot: u32,
    server: ServerId,
    /// Index into the slot's replica set of the server being tried.
    attempt: u8,
    purpose: ReadPurpose,
}

/// Which role a pending write plays in a replica set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WriteRole {
    /// Carries the caller's request id; its ack surfaces `WriteDone`.
    Primary,
    /// Internal fan-out/repair copy; its ack only updates accounting.
    Replica,
    /// Relocation copy headed to a new server; its ack surfaces
    /// `RelocateDone` so the executor can swap the directory entry.
    Relocate {
        /// The replica being vacated.
        from: ServerId,
    },
}

#[derive(Clone, Copy, Debug)]
struct PendingWrite {
    ns: NamespaceId,
    slot: u32,
    server: ServerId,
    version: u32,
    role: WriteRole,
}

/// One host's VMD client.
#[derive(Clone, Debug)]
pub struct VmdClient {
    id: ClientId,
    servers: Vec<ServerInfo>,
    rr: usize,
    /// Replica count for first writes (1 = the paper's unreplicated VMD).
    replication: usize,
    outbox: VecDeque<(ServerId, ClientMsg)>,
    pending_reads: HashMap<u64, PendingRead>,
    pending_writes: HashMap<u64, PendingWrite>,
    /// (ns, slot) → (version, latest write req).
    writeback: HashMap<(NamespaceId, u32), (u32, u64)>,
    /// Slots with a relocation in flight. The value flips to `false` when
    /// a fresh write or free supersedes the relocated content, so
    /// [`VmdClient::finish_relocation`] never installs a stale copy.
    relocating: HashMap<(NamespaceId, u32), bool>,
    next_internal: u64,
    /// Slots whose every replica is gone (observed by failed reads or
    /// crash-time eviction). Sorted for deterministic reporting.
    lost_slots: BTreeSet<(NamespaceId, u32)>,
    /// Replies for requests no longer pending (duplicate delivery after a
    /// crash-time failover re-issue) — dropped, counted.
    stale_msgs: u64,
    /// Copy-on-write breaks `(clone ns, slot)` performed by writes to
    /// still-shared fork slots, queued for the executor to drain (trace
    /// events and counters) — the break happens deep inside the sans-IO
    /// write path where the executor cannot see it.
    cow_breaks: VecDeque<(NamespaceId, u32)>,
}

impl VmdClient {
    /// Create a client that knows about `servers` with their initial
    /// advertised capacities.
    pub fn new(id: ClientId, servers: impl IntoIterator<Item = (ServerId, u64)>) -> Self {
        VmdClient {
            id,
            servers: servers
                .into_iter()
                .map(|(id, free_pages)| ServerInfo {
                    id,
                    free_pages,
                    spill_free: 0,
                    suspect: false,
                })
                .collect(),
            rr: 0,
            replication: 1,
            outbox: VecDeque::new(),
            pending_reads: HashMap::new(),
            pending_writes: HashMap::new(),
            writeback: HashMap::new(),
            relocating: HashMap::new(),
            next_internal: INTERNAL_REQ_BASE,
            lost_slots: BTreeSet::new(),
            stale_msgs: 0,
            cow_breaks: VecDeque::new(),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Set the replica count for first writes (clamped to the server
    /// count at placement time). 1 — the default — reproduces the paper's
    /// unreplicated placement exactly.
    pub fn set_replication(&mut self, k: usize) {
        self.replication = k.clamp(1, crate::directory::MAX_REPLICAS);
    }

    /// Current replica count for first writes.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Learn about a server that joined after this client was created
    /// (idempotent; updates the advertised capacities if already known).
    pub fn add_server(&mut self, id: ServerId, free_pages: u64, spill_free_pages: u64) {
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == id) {
            info.free_pages = free_pages;
            info.spill_free = spill_free_pages;
        } else {
            self.servers.push(ServerInfo {
                id,
                free_pages,
                spill_free: spill_free_pages,
                suspect: false,
            });
        }
    }

    /// Messages awaiting transmission (drained by the cluster executor).
    pub fn drain_outbox(&mut self) -> impl Iterator<Item = (ServerId, ClientMsg)> + '_ {
        self.outbox.drain(..)
    }

    /// True if transmissions are pending.
    pub fn has_outbox(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Number of reads/writes in flight.
    pub fn inflight(&self) -> usize {
        self.pending_reads.len() + self.pending_writes.len()
    }

    /// Issued-but-unacked writes still held in the writeback buffer. Zero
    /// means every write this client issued has landed at its replicas —
    /// the quiescence condition the clone controller's master-sealing step
    /// waits for before broadcasting a fork (an in-flight write racing the
    /// `NsFork` broadcast would store with a stale refcount).
    pub fn unacked_writes(&self) -> usize {
        self.writeback.len()
    }

    /// Slots observed lost (every replica gone), sorted.
    pub fn lost_slots(&self) -> impl Iterator<Item = (NamespaceId, u32)> + '_ {
        self.lost_slots.iter().copied()
    }

    /// Number of distinct slots observed lost.
    pub fn lost_slot_count(&self) -> usize {
        self.lost_slots.len()
    }

    /// Replies that arrived for requests no longer pending.
    pub fn stale_msgs(&self) -> u64 {
        self.stale_msgs
    }

    /// True while the failure detector considers `server` crashed.
    pub fn is_suspect(&self, server: ServerId) -> bool {
        self.servers.iter().any(|i| i.id == server && i.suspect)
    }

    fn next_internal_req(&mut self) -> u64 {
        let req = self.next_internal;
        self.next_internal += 1;
        req
    }

    /// Issue a page read. Prefers the writeback buffer, then the first
    /// non-suspect replica in directory order; if no live replica holds
    /// the slot the read fails as typed data. A clone namespace's
    /// still-shared slot resolves through its fork parent: the request
    /// goes out under the master namespace, against the master's
    /// placements (the clone has no copy of its own until first write).
    pub fn read(&mut self, dir: &VmdDirectory, ns: NamespaceId, slot: u32, req: u64) -> ReadIssue {
        if let Some(&(version, _)) = self.writeback.get(&(ns, slot)) {
            return ReadIssue::Local { version };
        }
        let target = dir.resolve(ns, slot);
        let set = dir.replicas(target, slot);
        let Some((attempt, server)) = self.first_live_replica(&set, 0) else {
            self.lost_slots.insert((target, slot));
            return ReadIssue::Failed(VmdError::LostSlot { ns: target, slot });
        };
        self.pending_reads.insert(
            req,
            PendingRead {
                ns: target,
                slot,
                server,
                attempt,
                purpose: ReadPurpose::Swap,
            },
        );
        self.outbox.push_back((
            server,
            ClientMsg::ReadReq {
                from: self.id,
                ns: target,
                slot,
                req,
            },
        ));
        ReadIssue::Sent
    }

    /// First replica at index ≥ `from` whose server is not suspect.
    fn first_live_replica(&self, set: &ReplicaSet, from: usize) -> Option<(u8, ServerId)> {
        set.as_slice()
            .iter()
            .enumerate()
            .skip(from)
            .find(|(_, &s)| !self.is_suspect(s))
            .map(|(i, &s)| (i as u8, s))
    }

    /// Issue a page write. First write of a slot chooses (and records) a
    /// replica set with load-aware round-robin; overwrites go to the
    /// slot's existing replicas. A clone namespace's first write to a
    /// still-shared slot breaks the share (copy-on-write): the clone
    /// drops its reference to the master page (`DropRef` to each master
    /// replica) and the write proceeds as a fresh private-overlay
    /// placement under the clone namespace.
    pub fn write(
        &mut self,
        dir: &mut VmdDirectory,
        ns: NamespaceId,
        slot: u32,
        version: u32,
        req: u64,
    ) {
        if dir.is_shared(ns, slot) {
            if let Some(out) = dir.drop_share(ns, slot) {
                for &server in out.replicas.as_slice() {
                    if out.released {
                        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
                            info.free_pages += 1;
                        }
                    }
                    self.outbox.push_back((
                        server,
                        ClientMsg::DropRef {
                            ns: out.master,
                            slot,
                        },
                    ));
                }
                self.cow_breaks.push_back((ns, slot));
            }
        }
        let mut set = dir.replicas(ns, slot);
        if set.is_empty() {
            let want = self.replication.min(self.servers.len()).max(1);
            set = self.pick_replicas(want);
            dir.set_replicas(ns, slot, set);
            // Optimistic accounting: the page will occupy a server page on
            // every replica — its DRAM if the view says there is room,
            // otherwise a spill tier.
            for &s in set.as_slice() {
                if let Some(info) = self.servers.iter_mut().find(|i| i.id == s) {
                    if info.free_pages > 0 {
                        info.free_pages -= 1;
                    } else {
                        info.spill_free = info.spill_free.saturating_sub(1);
                    }
                }
            }
        }
        self.writeback.insert((ns, slot), (version, req));
        if !self.relocating.is_empty() {
            if let Some(valid) = self.relocating.get_mut(&(ns, slot)) {
                // The relocated copy is now stale; let the move finish but
                // never install it in the directory.
                *valid = false;
            }
        }
        let rc = dir.shared_rc(ns, slot);
        for (i, &server) in set.as_slice().iter().enumerate() {
            let (wreq, role) = if i == 0 {
                (req, WriteRole::Primary)
            } else {
                (self.next_internal_req(), WriteRole::Replica)
            };
            self.pending_writes.insert(
                wreq,
                PendingWrite {
                    ns,
                    slot,
                    server,
                    version,
                    role,
                },
            );
            self.outbox.push_back((
                server,
                ClientMsg::WriteReq {
                    from: self.id,
                    ns,
                    slot,
                    version,
                    req: wreq,
                    rc,
                },
            ));
        }
    }

    /// Free a slot: tells every replica and forgets the placement.
    ///
    /// Fork-aware: a clone freeing a still-shared slot merely drops its
    /// reference (`DropRef`, no placement of its own to forget); a master
    /// freeing a slot that clones still share defers the release — the
    /// placement is retained in the directory, the servers mark the page
    /// owner-freed, and the last clone's `DropRef` releases it for real.
    pub fn free(&mut self, dir: &mut VmdDirectory, ns: NamespaceId, slot: u32) {
        if dir.is_shared(ns, slot) {
            if let Some(out) = dir.drop_share(ns, slot) {
                for &server in out.replicas.as_slice() {
                    if out.released {
                        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
                            info.free_pages += 1;
                        }
                    }
                    self.outbox.push_back((
                        server,
                        ClientMsg::DropRef {
                            ns: out.master,
                            slot,
                        },
                    ));
                }
            }
            return;
        }
        if let Some(set) = dir.owner_free_slot(ns, slot) {
            // Deferred release: no free-capacity credit — the page stays
            // resident on every replica until the last sharer drops it.
            self.writeback.remove(&(ns, slot));
            for &server in set.as_slice() {
                self.outbox
                    .push_back((server, ClientMsg::Free { ns, slot }));
            }
            return;
        }
        self.writeback.remove(&(ns, slot));
        if !self.relocating.is_empty() {
            if let Some(valid) = self.relocating.get_mut(&(ns, slot)) {
                *valid = false;
            }
        }
        let set = dir.forget_replicas(ns, slot);
        for &server in set.as_slice() {
            if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
                info.free_pages += 1;
            }
            self.outbox
                .push_back((server, ClientMsg::Free { ns, slot }));
        }
    }

    /// Load-aware round-robin: next non-suspect server in ring order that
    /// reports unused memory. When every live server reports full DRAM,
    /// the fallback prefers servers that still advertise spill-tier
    /// headroom (§IV-A's HD/SSD extension — and any lower tier of the
    /// stack) over plain round-robin: a server whose DRAM is full but
    /// whose spill tiers are empty used to be treated the same as one
    /// that is full everywhere, skewing placement away from usable
    /// capacity. Only when no live server has headroom *anywhere* does
    /// placement degenerate to plain round-robin.
    fn pick_server(&mut self) -> ServerId {
        assert!(!self.servers.is_empty(), "VMD has no servers");
        let n = self.servers.len();
        for step in 0..n {
            let idx = (self.rr + step) % n;
            if self.servers[idx].free_pages > 0 && !self.servers[idx].suspect {
                self.rr = (idx + 1) % n;
                return self.servers[idx].id;
            }
        }
        for step in 0..n {
            let idx = (self.rr + step) % n;
            if self.servers[idx].spill_free > 0 && !self.servers[idx].suspect {
                self.rr = (idx + 1) % n;
                return self.servers[idx].id;
            }
        }
        for step in 0..n {
            let idx = (self.rr + step) % n;
            if !self.servers[idx].suspect {
                self.rr = (idx + 1) % n;
                return self.servers[idx].id;
            }
        }
        // Every server suspect: place anyway (the write will be retried by
        // the failover machinery if it never completes).
        let idx = self.rr % n;
        self.rr = (idx + 1) % n;
        self.servers[idx].id
    }

    /// Choose `want` distinct servers: the primary via the load-aware ring
    /// (identical to unreplicated placement), then further distinct
    /// non-suspect servers in ring order, preferring ones with free DRAM.
    fn pick_replicas(&mut self, want: usize) -> ReplicaSet {
        let mut set = ReplicaSet::one(self.pick_server());
        while set.len() < want {
            match self.next_distinct(&set) {
                Some(s) => {
                    set.push(s);
                }
                None => break,
            }
        }
        set
    }

    /// Next non-member, non-suspect server in ring order from the cursor;
    /// first pass insists on free DRAM, second takes any live server.
    fn next_distinct(&mut self, set: &ReplicaSet) -> Option<ServerId> {
        let n = self.servers.len();
        for pass in 0..2 {
            for step in 0..n {
                let idx = (self.rr + step) % n;
                let info = self.servers[idx];
                if set.contains(info.id) || info.suspect {
                    continue;
                }
                if pass == 0 && info.free_pages == 0 {
                    continue;
                }
                self.rr = (idx + 1) % n;
                return Some(info.id);
            }
        }
        None
    }

    /// Feed a server's reply (or gossip) back in; returns completions to
    /// surface to the Migration Manager / swap layer. Replies for unknown
    /// request ids (duplicates after a failover re-issue) are counted and
    /// dropped rather than panicking — after a crash they are expected.
    pub fn on_server_msg(&mut self, from: ServerId, msg: ServerMsg) -> Option<VmdCompletion> {
        match msg {
            ServerMsg::ReadResp {
                req,
                version,
                free_pages,
            } => {
                self.update_availability(from, free_pages, None);
                match self.pending_reads.remove(&req) {
                    None => {
                        self.stale_msgs += 1;
                        None
                    }
                    Some(pr) => match pr.purpose {
                        ReadPurpose::Swap => Some(VmdCompletion::ReadDone { req, version }),
                        ReadPurpose::Repair => Some(VmdCompletion::RepairRead {
                            ns: pr.ns,
                            slot: pr.slot,
                            version,
                        }),
                        ReadPurpose::Relocate => Some(VmdCompletion::RelocateRead {
                            ns: pr.ns,
                            slot: pr.slot,
                            version,
                            from: pr.server,
                        }),
                    },
                }
            }
            ServerMsg::WriteAck { req, free_pages } => {
                self.update_availability(from, free_pages, None);
                match self.pending_writes.remove(&req) {
                    None => {
                        self.stale_msgs += 1;
                        None
                    }
                    Some(pw) => {
                        if let WriteRole::Relocate { from } = pw.role {
                            return Some(VmdCompletion::RelocateDone {
                                ns: pw.ns,
                                slot: pw.slot,
                                from,
                                to: pw.server,
                            });
                        }
                        if pw.role == WriteRole::Replica {
                            return None;
                        }
                        // Only the latest write of a slot clears the
                        // writeback entry; an ack for a superseded write
                        // must not expose a stale read-through.
                        if let Some(&(_, latest_req)) = self.writeback.get(&(pw.ns, pw.slot)) {
                            if latest_req == req {
                                self.writeback.remove(&(pw.ns, pw.slot));
                            }
                        }
                        Some(VmdCompletion::WriteDone { req })
                    }
                }
            }
            ServerMsg::Availability {
                server,
                free_pages,
                spill_free_pages,
            } => {
                self.update_availability(server, free_pages, Some(spill_free_pages));
                None
            }
            ServerMsg::LeaseUpdate {
                server, free_pages, ..
            } => {
                // A lease resize is authoritative gossip: adopt the new
                // free capacity so placement stops aiming at a shrinking
                // server before the next periodic round.
                self.update_availability(server, free_pages, None);
                None
            }
            ServerMsg::Nak {
                req,
                free_pages,
                spill_free_pages,
                ..
            } => {
                self.update_availability(from, free_pages, Some(spill_free_pages));
                if self.pending_reads.contains_key(&req) {
                    Some(VmdCompletion::ReadNak { req })
                } else if self.pending_writes.contains_key(&req) {
                    Some(VmdCompletion::WriteNak { req })
                } else {
                    self.stale_msgs += 1;
                    None
                }
            }
        }
    }

    /// After a [`VmdCompletion::ReadNak`] (or a crash of the server a read
    /// was aimed at): re-issue to the next live replica, or — if none is
    /// left — fail the read as typed data. Returns a completion only when
    /// the read is abandoned.
    pub fn read_failover(&mut self, dir: &VmdDirectory, req: u64) -> Option<VmdCompletion> {
        let pr = *self.pending_reads.get(&req)?;
        if pr.purpose == ReadPurpose::Relocate {
            // The point was to vacate that specific replica; if it cannot
            // serve the read there is nothing to move — abandon.
            self.pending_reads.remove(&req);
            self.relocating.remove(&(pr.ns, pr.slot));
            return Some(VmdCompletion::RelocateAbort {
                ns: pr.ns,
                slot: pr.slot,
            });
        }
        let set = dir.replicas(pr.ns, pr.slot);
        if let Some((attempt, server)) = self.first_live_replica(&set, pr.attempt as usize + 1) {
            let entry = self.pending_reads.get_mut(&req).expect("pending read");
            entry.server = server;
            entry.attempt = attempt;
            self.outbox.push_back((
                server,
                ClientMsg::ReadReq {
                    from: self.id,
                    ns: pr.ns,
                    slot: pr.slot,
                    req,
                },
            ));
            return None;
        }
        self.pending_reads.remove(&req);
        match pr.purpose {
            ReadPurpose::Swap => {
                self.lost_slots.insert((pr.ns, pr.slot));
                Some(VmdCompletion::ReadFailed {
                    req,
                    err: VmdError::LostSlot {
                        ns: pr.ns,
                        slot: pr.slot,
                    },
                })
            }
            // A repair that ran out of sources is abandoned; the slot is
            // either already counted lost or still intact elsewhere.
            ReadPurpose::Repair => None,
            ReadPurpose::Relocate => unreachable!("handled above"),
        }
    }

    /// After a [`VmdCompletion::WriteNak`] (or a crash of the server a
    /// write was aimed at): move the copy to a different server, updating
    /// the directory. Returns `WriteDone` when the write is abandoned
    /// (superseded, or no server can take it) so the executor can retire
    /// its request.
    pub fn write_failover(&mut self, dir: &mut VmdDirectory, req: u64) -> Option<VmdCompletion> {
        let pw = self.pending_writes.remove(&req)?;
        if let WriteRole::Relocate { .. } = pw.role {
            // The destination copy failed. The directory was never
            // touched (it changes only in finish_relocation), so just
            // drop the attempt — the reclaim pump will pick the slot
            // again on a later tick.
            self.relocating.remove(&(pw.ns, pw.slot));
            return Some(VmdCompletion::RelocateAbort {
                ns: pw.ns,
                slot: pw.slot,
            });
        }
        // Superseded: a newer write of the slot owns the writeback entry —
        // this copy's content no longer matters.
        let superseded = match self.writeback.get(&(pw.ns, pw.slot)) {
            None => true,
            Some(&(wver, latest)) => match pw.role {
                WriteRole::Primary => latest != req,
                WriteRole::Replica => wver != pw.version,
                WriteRole::Relocate { .. } => unreachable!("handled above"),
            },
        };
        dir.remove_replica(pw.ns, pw.slot, pw.server);
        if superseded {
            return (pw.role == WriteRole::Primary).then_some(VmdCompletion::WriteDone { req });
        }
        let exclude = dir.replicas(pw.ns, pw.slot);
        let Some(server) = self.next_distinct_excluding(&exclude, pw.server) else {
            // Nowhere to put the copy; give up rather than hang.
            self.lost_slots.insert((pw.ns, pw.slot));
            return (pw.role == WriteRole::Primary).then_some(VmdCompletion::WriteDone { req });
        };
        if exclude.is_empty() {
            dir.set_replicas(pw.ns, pw.slot, ReplicaSet::one(server));
        } else {
            dir.add_replica(pw.ns, pw.slot, server);
        }
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
            info.free_pages = info.free_pages.saturating_sub(1);
        }
        self.pending_writes
            .insert(req, PendingWrite { server, ..pw });
        let rc = dir.shared_rc(pw.ns, pw.slot);
        self.outbox.push_back((
            server,
            ClientMsg::WriteReq {
                from: self.id,
                ns: pw.ns,
                slot: pw.slot,
                version: pw.version,
                req,
                rc,
            },
        ));
        None
    }

    fn next_distinct_excluding(&mut self, set: &ReplicaSet, also: ServerId) -> Option<ServerId> {
        let mut exclude = *set;
        exclude.push(also);
        self.next_distinct(&exclude)
    }

    /// Failure-detector verdict: `server` crashed. Marks it suspect (so
    /// placement and reads avoid it) and fails over every pending request
    /// aimed at it, in ascending request order for determinism. Returns
    /// completions for requests that had to be abandoned.
    pub fn mark_suspect(&mut self, dir: &mut VmdDirectory, server: ServerId) -> Vec<VmdCompletion> {
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
            info.suspect = true;
        }
        let mut out = Vec::new();
        let mut reads: Vec<u64> = self
            .pending_reads
            .iter()
            .filter(|(_, pr)| pr.server == server)
            .map(|(&req, _)| req)
            .collect();
        reads.sort_unstable();
        for req in reads {
            if let Some(c) = self.read_failover(dir, req) {
                out.push(c);
            }
        }
        let mut writes: Vec<u64> = self
            .pending_writes
            .iter()
            .filter(|(_, pw)| pw.server == server)
            .map(|(&req, _)| req)
            .collect();
        writes.sort_unstable();
        for req in writes {
            if let Some(c) = self.write_failover(dir, req) {
                out.push(c);
            }
        }
        out
    }

    /// Start re-replicating `(ns, slot)`: read it from a surviving replica
    /// so [`VmdCompletion::RepairRead`] can copy it to a new server.
    /// Returns false when no repair is needed or possible.
    pub fn begin_repair(&mut self, dir: &VmdDirectory, ns: NamespaceId, slot: u32) -> bool {
        let set = dir.replicas(ns, slot);
        if set.is_empty() || set.len() >= self.replication {
            return false;
        }
        let Some((attempt, server)) = self.first_live_replica(&set, 0) else {
            return false;
        };
        let req = self.next_internal_req();
        self.pending_reads.insert(
            req,
            PendingRead {
                ns,
                slot,
                server,
                attempt,
                purpose: ReadPurpose::Repair,
            },
        );
        self.outbox.push_back((
            server,
            ClientMsg::ReadReq {
                from: self.id,
                ns,
                slot,
                req,
            },
        ));
        true
    }

    /// Second half of a repair: write the page read from a survivor to a
    /// fresh server and record the new replica.
    pub fn repair_write(
        &mut self,
        dir: &mut VmdDirectory,
        ns: NamespaceId,
        slot: u32,
        version: u32,
    ) {
        let current = dir.replicas(ns, slot);
        if current.is_empty() || current.len() >= self.replication {
            return;
        }
        let Some(server) = self.next_distinct(&current) else {
            return;
        };
        dir.add_replica(ns, slot, server);
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
            info.free_pages = info.free_pages.saturating_sub(1);
        }
        let req = self.next_internal_req();
        self.pending_writes.insert(
            req,
            PendingWrite {
                ns,
                slot,
                server,
                version,
                role: WriteRole::Replica,
            },
        );
        // Repair copies of a forked master's page must carry the exact
        // current fork refcount, or a later master purge would release a
        // page clones still reference.
        let rc = dir.shared_rc(ns, slot);
        self.outbox.push_back((
            server,
            ClientMsg::WriteReq {
                from: self.id,
                ns,
                slot,
                version,
                req,
                rc,
            },
        ));
    }

    /// Relocations currently in flight on this client (quiescence checks).
    pub fn relocations_inflight(&self) -> usize {
        self.relocating.len()
    }

    /// Start relocating `(ns, slot)` off `from` (lease reclaim or
    /// rebalance): read the copy from that specific replica so
    /// [`VmdCompletion::RelocateRead`] can copy it to a server with
    /// headroom. Returns false when the slot has no copy on `from`, the
    /// source is suspect, a relocation of the slot is already in flight,
    /// or the slot is mid-overwrite (writeback owns the content — the new
    /// version's fan-out will land wherever the directory says).
    pub fn begin_relocation(
        &mut self,
        dir: &VmdDirectory,
        ns: NamespaceId,
        slot: u32,
        from: ServerId,
    ) -> bool {
        if self.writeback.contains_key(&(ns, slot))
            || self.relocating.contains_key(&(ns, slot))
            || self.is_suspect(from)
        {
            return false;
        }
        let set = dir.replicas(ns, slot);
        let Some(pos) = set.as_slice().iter().position(|&s| s == from) else {
            return false;
        };
        self.relocating.insert((ns, slot), true);
        let req = self.next_internal_req();
        self.pending_reads.insert(
            req,
            PendingRead {
                ns,
                slot,
                server: from,
                attempt: pos as u8,
                purpose: ReadPurpose::Relocate,
            },
        );
        self.outbox.push_back((
            from,
            ClientMsg::ReadReq {
                from: self.id,
                ns,
                slot,
                req,
            },
        ));
        true
    }

    /// Second half of a relocation: write the page read off `from` to a
    /// fresh server, preferring `prefer` when given (the rebalance
    /// planner's target). Unlike ordinary placement there is no
    /// full-server fallback — relocating onto a server without free
    /// leased DRAM would only move the pressure. Returns false when the
    /// move is abandoned (superseded, source no longer a replica, or no
    /// destination with headroom).
    pub fn relocate_write(
        &mut self,
        dir: &VmdDirectory,
        ns: NamespaceId,
        slot: u32,
        version: u32,
        from: ServerId,
        prefer: Option<ServerId>,
    ) -> bool {
        let current = dir.replicas(ns, slot);
        if self.relocating.get(&(ns, slot)) != Some(&true) || !current.contains(from) {
            self.relocating.remove(&(ns, slot));
            return false;
        }
        let dest = prefer
            .filter(|&p| {
                !current.contains(p) && !self.is_suspect(p) && self.known_free(p).unwrap_or(0) > 0
            })
            .or_else(|| self.next_free_distinct(&current));
        let Some(dest) = dest else {
            self.relocating.remove(&(ns, slot));
            return false;
        };
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == dest) {
            info.free_pages = info.free_pages.saturating_sub(1);
        }
        let req = self.next_internal_req();
        self.pending_writes.insert(
            req,
            PendingWrite {
                ns,
                slot,
                server: dest,
                version,
                role: WriteRole::Relocate { from },
            },
        );
        // Relocated copies of a forked master's page carry the current
        // fork refcount so the moved copy's mirror stays exact.
        let rc = dir.shared_rc(ns, slot);
        self.outbox.push_back((
            dest,
            ClientMsg::WriteReq {
                from: self.id,
                ns,
                slot,
                version,
                req,
                rc,
            },
        ));
        true
    }

    /// Complete a relocation after the destination acked: swap the
    /// directory entry in place (replica order — and thus failover
    /// choices — preserved) and free the source copy. When the slot was
    /// overwritten or freed mid-flight the new copy is dropped instead,
    /// so no orphan pages leak. Returns true when the directory moved.
    pub fn finish_relocation(
        &mut self,
        dir: &mut VmdDirectory,
        ns: NamespaceId,
        slot: u32,
        from: ServerId,
        to: ServerId,
    ) -> bool {
        let valid = self.relocating.remove(&(ns, slot)) == Some(true);
        if valid {
            if dir.replace_replica(ns, slot, from, to) {
                if let Some(info) = self.servers.iter_mut().find(|i| i.id == from) {
                    info.free_pages += 1;
                }
                self.outbox.push_back((from, ClientMsg::Free { ns, slot }));
                return true;
            }
            // `from` was already evicted (a crash raced the relocation):
            // the copy at `to` is still the latest acked content, so keep
            // it as a replacement replica instead of dropping it.
            if !dir.replicas(ns, slot).is_empty() && dir.add_replica(ns, slot, to) {
                return true;
            }
        }
        // Superseded (fresh overwrite or free) or no placement left: the
        // destination copy is an orphan — release it.
        if !dir.replicas(ns, slot).contains(to) {
            if let Some(info) = self.servers.iter_mut().find(|i| i.id == to) {
                info.free_pages += 1;
            }
            self.outbox.push_back((to, ClientMsg::Free { ns, slot }));
        }
        false
    }

    /// Tear down a namespace (the VM was destroyed, not migrated): drop
    /// its writeback entries, invalidate any in-flight relocation of its
    /// slots, and tell every replica to free its pages. Returns the
    /// number of placements released.
    ///
    /// The relocation guard is the point: a purge racing a reclaim
    /// demotion/relocation must not resurrect a purged page. In-flight
    /// relocation entries stay pending — their completions still have to
    /// drain — but flip invalid, so [`VmdClient::relocate_write`] abandons
    /// the move and [`VmdClient::finish_relocation`] frees the copy at the
    /// destination instead of re-installing it in the directory.
    ///
    /// Fork-aware in both directions. Purging a *clone* first drops every
    /// still-shared master reference (`DropRef` fan-out; the master's
    /// placements are untouched), then releases the clone's private
    /// overlay through the legacy path, then retires the fork bookkeeping.
    /// Purging a *master* with live clones retains the shared placements:
    /// the directory keeps them (owner-freed), the servers defer the
    /// `Free`s, and no free-capacity credit is taken for retained pages.
    pub fn purge_namespace(&mut self, dir: &mut VmdDirectory, ns: NamespaceId) -> usize {
        let is_clone = dir.parent_of(ns).is_some();
        for slot in dir.shared_slots(ns) {
            if let Some(out) = dir.drop_share(ns, slot) {
                for &server in out.replicas.as_slice() {
                    if out.released {
                        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
                            info.free_pages += 1;
                        }
                    }
                    self.outbox.push_back((
                        server,
                        ClientMsg::DropRef {
                            ns: out.master,
                            slot,
                        },
                    ));
                }
            }
        }
        self.writeback.retain(|&(n, _), _| n != ns);
        for (&(n, _), valid) in self.relocating.iter_mut() {
            if n == ns {
                *valid = false;
            }
        }
        self.lost_slots.retain(|&(n, _)| n != ns);
        let placements = dir.purge_namespace(ns);
        let count = placements.len();
        for (slot, server) in placements {
            // Placements retained for clones (shared, now owner-freed) stay
            // resident server-side: send the deferred Free, skip the credit.
            let retained = dir.shared_rc(ns, slot) > 0;
            if !retained {
                if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
                    info.free_pages += 1;
                }
            }
            self.outbox
                .push_back((server, ClientMsg::Free { ns, slot }));
        }
        if is_clone {
            dir.release_clone(ns);
        }
        count
    }

    /// Fork `master` into a new copy-on-write clone namespace: the clone
    /// shares every slot the master currently has placed, read-only, and
    /// an `NsFork` is queued to each server holding at least one of the
    /// master's pages so the per-page refcount mirrors bump in lockstep
    /// with the directory. Returns the clone namespace id.
    pub fn fork_namespace(&mut self, dir: &mut VmdDirectory, master: NamespaceId) -> NamespaceId {
        let servers = dir.fork_servers(master);
        let clone = dir.fork_namespace(master);
        for server in servers {
            self.outbox
                .push_back((server, ClientMsg::NsFork { master }));
        }
        clone
    }

    /// Drain the copy-on-write breaks recorded since the last drain
    /// (clone namespace, slot), in write order — the executor turns these
    /// into trace events and counters.
    pub fn drain_cow_breaks(&mut self) -> impl Iterator<Item = (NamespaceId, u32)> + '_ {
        self.cow_breaks.drain(..)
    }

    /// True when copy-on-write breaks await draining.
    pub fn has_cow_breaks(&self) -> bool {
        !self.cow_breaks.is_empty()
    }

    /// Next non-member, non-suspect server in ring order *with free leased
    /// DRAM* — no any-server fallback (see [`VmdClient::relocate_write`]).
    fn next_free_distinct(&mut self, set: &ReplicaSet) -> Option<ServerId> {
        let n = self.servers.len();
        for step in 0..n {
            let idx = (self.rr + step) % n;
            let info = self.servers[idx];
            if set.contains(info.id) || info.suspect || info.free_pages == 0 {
                continue;
            }
            self.rr = (idx + 1) % n;
            return Some(info.id);
        }
        None
    }

    fn update_availability(&mut self, server: ServerId, free_pages: u64, spill_free: Option<u64>) {
        if let Some(info) = self.servers.iter_mut().find(|i| i.id == server) {
            // Hearing from (or authoritatively about) a server means it is
            // up — a rejoined server stops being suspect.
            info.suspect = false;
            // Don't let gossip *raise* free pages above what our optimistic
            // in-flight accounting implies; untransmitted writes still land.
            let inflight_to_server = self
                .outbox
                .iter()
                .filter(|(s, m)| *s == server && matches!(m, ClientMsg::WriteReq { .. }))
                .count() as u64;
            info.free_pages = free_pages.saturating_sub(inflight_to_server);
            // Only gossip and NAKs carry the spill view; per-request acks
            // leave it untouched.
            if let Some(sp) = spill_free {
                info.spill_free = sp;
            }
        }
    }

    /// The client's current view of a server's free pages (tests).
    pub fn known_free(&self, server: ServerId) -> Option<u64> {
        self.servers
            .iter()
            .find(|i| i.id == server)
            .map(|i| i.free_pages)
    }

    /// The client's current view of a server's free spill-tier pages.
    pub fn known_spill_free(&self, server: ServerId) -> Option<u64> {
        self.servers
            .iter()
            .find(|i| i.id == server)
            .map(|i| i.spill_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(free: &[u64]) -> (VmdClient, VmdDirectory) {
        let servers = free
            .iter()
            .enumerate()
            .map(|(i, &f)| (ServerId(i as u32), f));
        (VmdClient::new(ClientId(0), servers), VmdDirectory::new())
    }

    #[test]
    fn writes_round_robin_across_servers() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = d.create_namespace();
        for slot in 0..6 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(
            targets,
            vec![
                ServerId(0),
                ServerId(1),
                ServerId(2),
                ServerId(0),
                ServerId(1),
                ServerId(2)
            ]
        );
    }

    #[test]
    fn full_servers_are_skipped() {
        let (mut c, mut d) = setup(&[0, 5, 0]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        c.write(&mut d, ns, 1, 1, 2);
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(targets, vec![ServerId(1), ServerId(1)]);
    }

    #[test]
    fn overwrite_goes_to_original_server() {
        let (mut c, mut d) = setup(&[10, 10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        let first: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        // Ack it so the writeback entry clears.
        c.on_server_msg(
            first[0],
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        c.write(&mut d, ns, 0, 2, 2);
        let second: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(first, second, "overwrite must not move the slot");
    }

    #[test]
    fn read_of_unacked_write_is_local() {
        let (mut c, mut d) = setup(&[10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 3, 7, 1);
        assert_eq!(
            c.read(&d, ns, 3, 2),
            ReadIssue::Local { version: 7 },
            "writeback buffer serves the read"
        );
        // After the ack, reads go to the network.
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 3, 3), ReadIssue::Sent);
        let msgs: Vec<ClientMsg> = c.drain_outbox().map(|(_, m)| m).collect();
        assert!(matches!(msgs[0], ClientMsg::ReadReq { slot: 3, .. }));
    }

    #[test]
    fn superseding_write_keeps_writeback_until_its_own_ack() {
        let (mut c, mut d) = setup(&[10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        c.write(&mut d, ns, 0, 2, 2); // supersedes before ack
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        // Old ack must not clear the newer buffered version.
        assert_eq!(c.read(&d, ns, 0, 9), ReadIssue::Local { version: 2 });
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 2,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 10), ReadIssue::Sent);
    }

    #[test]
    fn read_completion_roundtrip() {
        let (mut c, mut d) = setup(&[10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 42, 1);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 2), ReadIssue::Sent);
        let done = c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: 2,
                version: 42,
                free_pages: 9,
            },
        );
        assert_eq!(
            done,
            Some(VmdCompletion::ReadDone {
                req: 2,
                version: 42
            })
        );
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn availability_gossip_updates_view() {
        let (mut c, _) = setup(&[10]);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::Availability {
                server: ServerId(0),
                free_pages: 3,
                spill_free_pages: 5,
            },
        );
        assert_eq!(c.known_free(ServerId(0)), Some(3));
        assert_eq!(c.known_spill_free(ServerId(0)), Some(5));
    }

    #[test]
    fn optimistic_accounting_prevents_overcommit() {
        let (mut c, mut d) = setup(&[2, 2]);
        let ns = d.create_namespace();
        // 4 writes exactly fill both servers in the client's view.
        for slot in 0..4 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        assert_eq!(c.known_free(ServerId(0)), Some(0));
        assert_eq!(c.known_free(ServerId(1)), Some(0));
    }

    #[test]
    fn full_pool_falls_back_to_round_robin() {
        // Every server reports full DRAM: writes still place (the server's
        // disk spill tier absorbs them), cycling the ring.
        let (mut c, mut d) = setup(&[1, 1]);
        let ns = d.create_namespace();
        for slot in 0..4 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(targets.len(), 4);
        // After the two free slots are consumed, placement keeps cycling.
        assert_ne!(targets[2], targets[3], "fallback must round-robin");
    }

    #[test]
    fn free_returns_capacity_and_notifies_server() {
        let (mut c, mut d) = setup(&[1]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        c.drain_outbox().for_each(drop);
        c.free(&mut d, ns, 0);
        assert_eq!(c.known_free(ServerId(0)), Some(1));
        let msgs: Vec<ClientMsg> = c.drain_outbox().map(|(_, m)| m).collect();
        assert!(matches!(msgs[0], ClientMsg::Free { slot: 0, .. }));
        // And the slot can be written again.
        c.write(&mut d, ns, 1, 1, 2);
    }

    #[test]
    fn replicated_write_fans_out_to_distinct_servers() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        c.set_replication(2);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(targets, vec![ServerId(0), ServerId(1)]);
        assert_eq!(d.replicas(ns, 0).len(), 2);
        // Both copies cost capacity in the optimistic view.
        assert_eq!(c.known_free(ServerId(0)), Some(9));
        assert_eq!(c.known_free(ServerId(1)), Some(9));
        // Only the primary's ack surfaces a completion.
        assert_eq!(
            c.on_server_msg(
                ServerId(0),
                ServerMsg::WriteAck {
                    req: 1,
                    free_pages: 9
                }
            ),
            Some(VmdCompletion::WriteDone { req: 1 })
        );
    }

    #[test]
    fn read_fails_over_to_surviving_replica_on_crash() {
        let (mut c, mut d) = setup(&[10, 10]);
        c.set_replication(2);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 7, 1);
        c.drain_outbox().for_each(drop);
        // Ack both copies so the read leaves the writeback buffer.
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        let replica_req = INTERNAL_REQ_BASE;
        c.on_server_msg(
            ServerId(1),
            ServerMsg::WriteAck {
                req: replica_req,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 5), ReadIssue::Sent);
        c.drain_outbox().for_each(drop);
        // Primary crashes while the read is in flight.
        let completions = c.mark_suspect(&mut d, ServerId(0));
        assert!(completions.is_empty(), "read re-issued, not abandoned");
        let reissued: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(reissued.len(), 1);
        assert_eq!(reissued[0].0, ServerId(1));
        let done = c.on_server_msg(
            ServerId(1),
            ServerMsg::ReadResp {
                req: 5,
                version: 7,
                free_pages: 9,
            },
        );
        assert_eq!(done, Some(VmdCompletion::ReadDone { req: 5, version: 7 }));
    }

    #[test]
    fn unreplicated_crash_reports_lost_slot() {
        let (mut c, mut d) = setup(&[10, 10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 7, 1);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 5), ReadIssue::Sent);
        let completions = c.mark_suspect(&mut d, ServerId(0));
        assert_eq!(
            completions,
            vec![VmdCompletion::ReadFailed {
                req: 5,
                err: VmdError::LostSlot { ns, slot: 0 },
            }]
        );
        assert_eq!(c.lost_slot_count(), 1);
        // Later reads of the slot fail as data too (no placement left
        // after the directory evicts the server).
        d.evict_server(ServerId(0));
        assert!(matches!(c.read(&d, ns, 0, 6), ReadIssue::Failed(_)));
    }

    #[test]
    fn crash_moves_pending_write_to_live_server() {
        let (mut c, mut d) = setup(&[10, 10]);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 7, 1); // goes to server 0, unacked
        c.drain_outbox().for_each(drop);
        let completions = c.mark_suspect(&mut d, ServerId(0));
        assert!(completions.is_empty(), "write re-issued, not abandoned");
        let reissued: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(reissued.len(), 1);
        assert_eq!(reissued[0].0, ServerId(1), "moved off the crashed server");
        assert_eq!(d.lookup(ns, 0), Some(ServerId(1)));
        // Its eventual ack still completes the original request id.
        let done = c.on_server_msg(
            ServerId(1),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        assert_eq!(done, Some(VmdCompletion::WriteDone { req: 1 }));
    }

    #[test]
    fn nak_on_rejoined_server_fails_over() {
        let (mut c, mut d) = setup(&[10, 10]);
        c.set_replication(2);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 7, 1);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        c.on_server_msg(
            ServerId(1),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE,
                free_pages: 9,
            },
        );
        assert_eq!(c.read(&d, ns, 0, 5), ReadIssue::Sent);
        c.drain_outbox().for_each(drop);
        // Server 0 crashed, lost the page, and rejoined before the
        // failure detector noticed: it NAKs instead of timing out.
        let nak = c.on_server_msg(
            ServerId(0),
            ServerMsg::Nak {
                req: 5,
                err: VmdError::UnwrittenSlot { ns, slot: 0 },
                free_pages: 10,
                spill_free_pages: 0,
            },
        );
        assert_eq!(nak, Some(VmdCompletion::ReadNak { req: 5 }));
        assert!(c.read_failover(&d, 5).is_none(), "re-issued to replica");
        let reissued: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(reissued[0].0, ServerId(1));
    }

    #[test]
    fn repair_restores_replication_factor() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        c.set_replication(2);
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 7, 1);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        c.on_server_msg(
            ServerId(1),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE,
                free_pages: 9,
            },
        );
        // Server 0 crashes; the directory drops it.
        c.mark_suspect(&mut d, ServerId(0));
        d.evict_server(ServerId(0));
        assert_eq!(d.replicas(ns, 0).len(), 1);
        // Repair: read from the survivor, write to a fresh server.
        assert!(c.begin_repair(&d, ns, 0));
        let (src, _) = c.drain_outbox().next().expect("repair read");
        assert_eq!(src, ServerId(1));
        let comp = c.on_server_msg(
            ServerId(1),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert_eq!(
            comp,
            Some(VmdCompletion::RepairRead {
                ns,
                slot: 0,
                version: 7
            })
        );
        c.repair_write(&mut d, ns, 0, 7);
        let (dst, msg) = c.drain_outbox().next().expect("repair write");
        assert_eq!(dst, ServerId(2), "fresh replica, not the survivor");
        assert!(matches!(
            msg,
            ClientMsg::WriteReq {
                slot: 0,
                version: 7,
                ..
            }
        ));
        assert_eq!(d.replicas(ns, 0).len(), 2);
        // Fully replicated again: no further repair needed.
        assert!(!c.begin_repair(&d, ns, 0));
    }

    #[test]
    fn stale_replies_are_counted_not_fatal() {
        let (mut c, _) = setup(&[10]);
        assert_eq!(
            c.on_server_msg(
                ServerId(0),
                ServerMsg::ReadResp {
                    req: 99,
                    version: 1,
                    free_pages: 9
                }
            ),
            None
        );
        assert_eq!(
            c.on_server_msg(
                ServerId(0),
                ServerMsg::WriteAck {
                    req: 98,
                    free_pages: 9
                }
            ),
            None
        );
        assert_eq!(c.stale_msgs(), 2);
    }

    /// Write one k=2 slot to servers 0 and 1 and ack both copies.
    fn place_replicated_slot(c: &mut VmdClient, d: &mut VmdDirectory) -> NamespaceId {
        c.set_replication(2);
        let ns = d.create_namespace();
        c.write(d, ns, 0, 7, 1);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::WriteAck {
                req: 1,
                free_pages: 9,
            },
        );
        c.on_server_msg(
            ServerId(1),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE,
                free_pages: 9,
            },
        );
        ns
    }

    #[test]
    fn relocation_moves_slot_preserving_order() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        assert!(
            !c.begin_relocation(&d, ns, 0, ServerId(0)),
            "one relocation per slot at a time"
        );
        let (src, _) = c.drain_outbox().next().expect("relocation read");
        assert_eq!(src, ServerId(0), "read pinned to the vacating replica");
        let comp = c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert_eq!(
            comp,
            Some(VmdCompletion::RelocateRead {
                ns,
                slot: 0,
                version: 7,
                from: ServerId(0),
            })
        );
        assert!(c.relocate_write(&d, ns, 0, 7, ServerId(0), None));
        let (dst, _) = c.drain_outbox().next().expect("relocation write");
        assert_eq!(dst, ServerId(2), "fresh server, not a current replica");
        let comp = c.on_server_msg(
            ServerId(2),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE + 2,
                free_pages: 9,
            },
        );
        assert_eq!(
            comp,
            Some(VmdCompletion::RelocateDone {
                ns,
                slot: 0,
                from: ServerId(0),
                to: ServerId(2),
            })
        );
        assert!(c.finish_relocation(&mut d, ns, 0, ServerId(0), ServerId(2)));
        assert_eq!(
            d.replicas(ns, 0).as_slice(),
            &[ServerId(2), ServerId(1)],
            "replacement lands in the vacated position"
        );
        let frees: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].0, ServerId(0), "source copy released");
        assert!(matches!(frees[0].1, ClientMsg::Free { slot: 0, .. }));
        assert_eq!(c.relocations_inflight(), 0);
    }

    #[test]
    fn relocation_superseded_by_overwrite_drops_orphan() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert!(c.relocate_write(&d, ns, 0, 7, ServerId(0), None));
        // A fresh overwrite lands while the copy is in flight: the
        // relocated content (v7) is now stale.
        c.write(&mut d, ns, 0, 8, 99);
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(2),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE + 2,
                free_pages: 9,
            },
        );
        assert!(!c.finish_relocation(&mut d, ns, 0, ServerId(0), ServerId(2)));
        assert_eq!(
            d.replicas(ns, 0).as_slice(),
            &[ServerId(0), ServerId(1)],
            "stale copy must not enter the directory"
        );
        let frees: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].0, ServerId(2), "orphan copy released");
    }

    #[test]
    fn relocation_aborts_when_source_crashes() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        c.drain_outbox().for_each(drop);
        let completions = c.mark_suspect(&mut d, ServerId(0));
        assert_eq!(
            completions,
            vec![VmdCompletion::RelocateAbort { ns, slot: 0 }]
        );
        assert_eq!(c.relocations_inflight(), 0);
        assert_eq!(
            d.replicas(ns, 0).len(),
            2,
            "abort leaves the directory untouched"
        );
    }

    #[test]
    fn relocation_requires_destination_headroom() {
        // Third server reports no free leased DRAM: the move is abandoned
        // instead of falling back to a full server.
        let (mut c, mut d) = setup(&[10, 10, 0]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert!(!c.relocate_write(&d, ns, 0, 7, ServerId(0), None));
        assert_eq!(c.relocations_inflight(), 0);
    }

    #[test]
    fn relocation_becomes_replacement_when_source_is_evicted() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert!(c.relocate_write(&d, ns, 0, 7, ServerId(0), None));
        c.drain_outbox().for_each(drop);
        // The source crashes after serving the read; the directory evicts
        // it while the copy to server 2 is still in flight.
        d.evict_server(ServerId(0));
        let comp = c.on_server_msg(
            ServerId(2),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE + 2,
                free_pages: 9,
            },
        );
        assert!(matches!(comp, Some(VmdCompletion::RelocateDone { .. })));
        assert!(c.finish_relocation(&mut d, ns, 0, ServerId(0), ServerId(2)));
        assert_eq!(
            d.replicas(ns, 0).as_slice(),
            &[ServerId(1), ServerId(2)],
            "the acked copy substitutes for the lost replica"
        );
    }

    #[test]
    fn lease_update_adopts_free_view() {
        let (mut c, _) = setup(&[10]);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::LeaseUpdate {
                server: ServerId(0),
                lease_pages: 4,
                free_pages: 2,
            },
        );
        assert_eq!(c.known_free(ServerId(0)), Some(2));
    }

    #[test]
    fn relocation_prefers_planner_target() {
        let (mut c, mut d) = setup(&[10, 10, 10, 10]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert!(c.relocate_write(&d, ns, 0, 7, ServerId(0), Some(ServerId(3))));
        let (dst, _) = c.drain_outbox().next().expect("relocation write");
        assert_eq!(dst, ServerId(3), "planner's target wins over the ring");
    }

    #[test]
    fn gossip_clears_suspect_mark() {
        let (mut c, mut d) = setup(&[10, 10]);
        c.mark_suspect(&mut d, ServerId(0));
        assert!(c.is_suspect(ServerId(0)));
        // Placement avoids the suspect while it is down.
        let ns = d.create_namespace();
        c.write(&mut d, ns, 0, 1, 1);
        assert_eq!(d.lookup(ns, 0), Some(ServerId(1)));
        // Rejoin: gossip resumes, suspect mark clears, placement resumes.
        c.on_server_msg(
            ServerId(0),
            ServerMsg::Availability {
                server: ServerId(0),
                free_pages: 10,
                spill_free_pages: 0,
            },
        );
        assert!(!c.is_suspect(ServerId(0)));
    }

    /// Satellite-2 regression: with every server's DRAM full, a server
    /// with empty spill tiers must win placement over one that is full
    /// everywhere — the historical fallback was plain round-robin and
    /// skewed half the writes onto the server with no headroom at all.
    #[test]
    fn full_dram_placement_prefers_spill_headroom() {
        let (mut c, mut d) = setup(&[0, 0]);
        // Gossip: server 0 is full everywhere, server 1 has spill room.
        c.on_server_msg(
            ServerId(0),
            ServerMsg::Availability {
                server: ServerId(0),
                free_pages: 0,
                spill_free_pages: 0,
            },
        );
        c.on_server_msg(
            ServerId(1),
            ServerMsg::Availability {
                server: ServerId(1),
                free_pages: 0,
                spill_free_pages: 4,
            },
        );
        let ns = d.create_namespace();
        for slot in 0..4 {
            c.write(&mut d, ns, slot, 1, slot as u64);
        }
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_eq!(
            targets,
            vec![ServerId(1); 4],
            "all writes must aim at the server with spill headroom"
        );
        // The optimistic view consumed the spill headroom as it placed.
        assert_eq!(c.known_spill_free(ServerId(1)), Some(0));
        // With the spill view exhausted too, placement degenerates to
        // plain round-robin (the legacy fallback) instead of wedging.
        c.write(&mut d, ns, 10, 1, 10);
        c.write(&mut d, ns, 11, 1, 11);
        let targets: Vec<ServerId> = c.drain_outbox().map(|(s, _)| s).collect();
        assert_ne!(targets[0], targets[1], "exhausted pool round-robins");
    }

    /// Satellite-3 regression: a purge racing an in-flight relocation
    /// (the reclaim pump vacating a server) must not resurrect the purged
    /// page — the relocated copy has to be dropped, not installed.
    #[test]
    fn purge_racing_relocation_does_not_resurrect_slot() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        let ns = place_replicated_slot(&mut c, &mut d);
        assert!(c.begin_relocation(&d, ns, 0, ServerId(0)));
        c.drain_outbox().for_each(drop);
        c.on_server_msg(
            ServerId(0),
            ServerMsg::ReadResp {
                req: INTERNAL_REQ_BASE + 1,
                version: 7,
                free_pages: 9,
            },
        );
        assert!(c.relocate_write(&d, ns, 0, 7, ServerId(0), None));
        c.drain_outbox().for_each(drop);
        // VM destroyed while the relocation copy is in flight to server 2.
        assert_eq!(c.purge_namespace(&mut d, ns), 2);
        let frees: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(frees.len(), 2, "both directory replicas freed");
        assert!(frees
            .iter()
            .all(|(_, m)| matches!(m, ClientMsg::Free { .. })));
        // The copy's ack arrives after the purge: finish_relocation must
        // free the orphan at the destination, not re-enter the directory.
        let comp = c.on_server_msg(
            ServerId(2),
            ServerMsg::WriteAck {
                req: INTERNAL_REQ_BASE + 2,
                free_pages: 9,
            },
        );
        assert!(matches!(comp, Some(VmdCompletion::RelocateDone { .. })));
        assert!(!c.finish_relocation(&mut d, ns, 0, ServerId(0), ServerId(2)));
        assert!(
            d.replicas(ns, 0).is_empty(),
            "purged slot must stay purged — no tier resurrection"
        );
        let frees: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert_eq!(frees.len(), 1);
        assert_eq!(frees[0].0, ServerId(2), "orphan copy released");
        assert_eq!(c.relocations_inflight(), 0);
    }

    // ---- namespace forks (copy-on-write cloning) ----

    use crate::server::VmdServer;
    use std::collections::BTreeMap;

    /// Real servers behind the sans-IO client: drain the outbox into each
    /// server's `handle` and feed replies back until quiescent.
    fn pump(c: &mut VmdClient, servers: &mut BTreeMap<ServerId, VmdServer>) {
        loop {
            let msgs: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
            if msgs.is_empty() {
                break;
            }
            for (sid, msg) in msgs {
                let reply = servers.get_mut(&sid).expect("known server").handle(msg);
                if let Some(m) = reply.msg {
                    c.on_server_msg(sid, m);
                }
            }
        }
    }

    fn one_server(free: u64) -> BTreeMap<ServerId, VmdServer> {
        let mut m = BTreeMap::new();
        m.insert(ServerId(0), VmdServer::new(ServerId(0), free, 0));
        m
    }

    #[test]
    fn fork_read_resolves_through_master() {
        let (mut c, mut d) = setup(&[10]);
        let mut servers = one_server(10);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        pump(&mut c, &mut servers);
        let clone = c.fork_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        assert_eq!(
            servers[&ServerId(0)].page_rc(master, 0),
            Some(1),
            "NsFork bumped the server-side mirror"
        );
        // The clone's read goes out under the master namespace.
        assert!(matches!(c.read(&d, clone, 0, 2), ReadIssue::Sent));
        let (_, msg) = c.drain_outbox().next().expect("read issued");
        assert!(matches!(msg, ClientMsg::ReadReq { ns, slot: 0, .. } if ns == master));
        let comp = servers
            .get_mut(&ServerId(0))
            .unwrap()
            .handle(msg)
            .msg
            .and_then(|m| c.on_server_msg(ServerId(0), m));
        assert!(
            matches!(comp, Some(VmdCompletion::ReadDone { version: 7, .. })),
            "clone served the master's gold page: {comp:?}"
        );
    }

    #[test]
    fn cow_break_on_first_clone_write() {
        let (mut c, mut d) = setup(&[10]);
        let mut servers = one_server(10);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        pump(&mut c, &mut servers);
        let clone = c.fork_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        c.write(&mut d, clone, 0, 9, 2);
        let breaks: Vec<_> = c.drain_cow_breaks().collect();
        assert_eq!(breaks, vec![(clone, 0)]);
        let msgs: Vec<(ServerId, ClientMsg)> = c.drain_outbox().collect();
        assert!(
            matches!(msgs[0].1, ClientMsg::DropRef { ns, slot: 0 } if ns == master),
            "share dropped before the overlay write: {:?}",
            msgs[0].1
        );
        assert!(matches!(msgs[1].1, ClientMsg::WriteReq { ns, rc: 0, .. } if ns == clone));
        for (sid, m) in msgs {
            let reply = servers.get_mut(&sid).unwrap().handle(m);
            if let Some(r) = reply.msg {
                c.on_server_msg(sid, r);
            }
        }
        let s = &servers[&ServerId(0)];
        assert_eq!(s.page_rc(master, 0), Some(0), "master page back to rc 0");
        assert_eq!(s.page_rc(clone, 0), Some(0), "private overlay placed");
        assert!(s.ledger_consistent());
        assert!(!d.is_shared(clone, 0));
        // Subsequent clone reads stay private.
        assert_eq!(d.resolve(clone, 0), clone);
    }

    #[test]
    fn purging_clone_never_drops_master_or_sibling_pages() {
        let (mut c, mut d) = setup(&[10]);
        let mut servers = one_server(10);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        c.write(&mut d, master, 1, 8, 2);
        pump(&mut c, &mut servers);
        let c1 = c.fork_namespace(&mut d, master);
        let c2 = c.fork_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        assert_eq!(servers[&ServerId(0)].page_rc(master, 0), Some(2));
        // Purge one clone: master pages and the sibling's view survive.
        c.purge_namespace(&mut d, c1);
        pump(&mut c, &mut servers);
        let s = &servers[&ServerId(0)];
        assert_eq!(s.stored_pages(), 2, "no master page dropped");
        assert_eq!(s.page_rc(master, 0), Some(1));
        assert_eq!(s.page_rc(master, 1), Some(1));
        assert!(s.ledger_consistent());
        assert!(matches!(c.read(&d, c2, 0, 10), ReadIssue::Sent));
        c.drain_outbox().for_each(drop);
        assert_eq!(d.clone_count(master), 1);
    }

    #[test]
    fn purging_master_defers_release_until_last_clone_drops() {
        let (mut c, mut d) = setup(&[10]);
        let mut servers = one_server(10);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        pump(&mut c, &mut servers);
        let clone = c.fork_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        // Master goes away (scale-in of the original, or in-place
        // upgrade): the shared page must survive for the clone.
        c.purge_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        {
            let s = &servers[&ServerId(0)];
            assert_eq!(s.stored_pages(), 1, "deferred release kept the page");
            assert_eq!(s.owner_freed_pages(), 1);
            assert!(s.ledger_consistent());
        }
        assert!(
            matches!(c.read(&d, clone, 0, 5), ReadIssue::Sent),
            "clone still resolves the retained master placement"
        );
        pump(&mut c, &mut servers);
        // Last sharer gone: now the page is really released.
        c.purge_namespace(&mut d, clone);
        pump(&mut c, &mut servers);
        let s = &servers[&ServerId(0)];
        assert_eq!(s.stored_pages(), 0, "last DropRef released the page");
        assert_eq!(s.free_pages(), 10);
        assert!(s.ledger_consistent());
        assert!(!d.is_sealed(master));
    }

    #[test]
    fn clone_free_and_owner_free_commute() {
        // Order A: owner frees first (defer), clone drops second (release).
        let (mut c, mut d) = setup(&[10]);
        let mut servers = one_server(10);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        pump(&mut c, &mut servers);
        let clone = c.fork_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        c.free(&mut d, master, 0);
        pump(&mut c, &mut servers);
        assert_eq!(servers[&ServerId(0)].stored_pages(), 1);
        c.free(&mut d, clone, 0);
        pump(&mut c, &mut servers);
        assert_eq!(servers[&ServerId(0)].stored_pages(), 0);
        assert!(servers[&ServerId(0)].ledger_consistent());

        // Order B: clone drops first (page stays, unshared), owner frees
        // second (normal release).
        let (mut c, mut d) = setup(&[10]);
        let mut servers = one_server(10);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        pump(&mut c, &mut servers);
        let clone = c.fork_namespace(&mut d, master);
        pump(&mut c, &mut servers);
        c.free(&mut d, clone, 0);
        pump(&mut c, &mut servers);
        assert_eq!(servers[&ServerId(0)].stored_pages(), 1);
        assert_eq!(servers[&ServerId(0)].page_rc(master, 0), Some(0));
        c.free(&mut d, master, 0);
        pump(&mut c, &mut servers);
        assert_eq!(servers[&ServerId(0)].stored_pages(), 0);
        assert!(servers[&ServerId(0)].ledger_consistent());
    }

    #[test]
    fn repair_copies_carry_the_fork_refcount() {
        let (mut c, mut d) = setup(&[10, 10, 10]);
        c.set_replication(2);
        let master = d.create_namespace();
        c.write(&mut d, master, 0, 7, 1);
        c.drain_outbox().for_each(drop);
        let _c1 = c.fork_namespace(&mut d, master);
        let _c2 = c.fork_namespace(&mut d, master);
        c.drain_outbox().for_each(drop);
        // One replica died; the repair re-copy must carry rc = 2 so the
        // fresh server's mirror is exact from the first byte.
        d.remove_replica(master, 0, ServerId(1));
        c.repair_write(&mut d, master, 0, 7);
        let (_, msg) = c.drain_outbox().next().expect("repair write");
        assert!(
            matches!(msg, ClientMsg::WriteReq { rc: 2, .. }),
            "repair write lost the refcount: {msg:?}"
        );
    }
}
