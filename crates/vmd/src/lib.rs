//! # agile-vmd
//!
//! The **Virtualized Memory Device** (§IV-A of the paper): a distributed
//! in-memory key-value store that aggregates the free memory of
//! intermediate cluster hosts and presents it to each VM as a private,
//! *portable* swap block device.
//!
//! Components:
//!
//! * [`VmdServer`] — runs on each intermediate host; stores pages in spare
//!   DRAM (allocated only on write) with a configurable spill tier stack
//!   below it ([`tier`]: disk, zswap-like compressed memory, CXL-like far
//!   memory), and gossips its free capacity to clients.
//! * [`VmdClient`] — runs on source/destination hosts; routes page I/O to
//!   servers using load-aware round-robin placement, keeps a writeback
//!   buffer for issued-but-unacked writes, and exposes namespaces.
//! * [`VmdDirectory`] — namespace metadata (slot → server placements) that
//!   travels with the portable device.
//! * [`VmdSwapDevice`] — one namespace bound as an
//!   [`agile_memory::SwapBackend`] block device (the `/dev/blkN` the
//!   Migration Manager sees).
//!
//! Everything is sans-IO: clients queue protocol messages in an outbox and
//! the cluster executor moves them over the simulated network, so VMD
//! traffic contends with migration and application traffic for NIC
//! bandwidth exactly as in the paper's testbed.

pub mod backend;
pub mod client;
pub mod directory;
pub mod pool;
pub mod proto;
pub mod server;
pub mod tier;

pub use backend::VmdSwapDevice;
pub use client::{ReadIssue, VmdClient, VmdCompletion};
pub use directory::{DropOutcome, ReplicaSet, VmdDirectory, MAX_REPLICAS};
pub use pool::{LeaseConfig, LeaseController, PoolPlanner, ReclaimTarget, ServerLoad};
pub use proto::{
    ClientId, ClientMsg, NamespaceId, ServerId, ServerMsg, VmdError, MSG_HEADER_BYTES,
};
pub use server::{ServerReply, VmdServer};
pub use tier::{
    HeatPolicy, ResolvedTier, TierBacking, TierCapacity, TierLedger, TierSpec, TierStackConfig,
    MAX_TIERS,
};
