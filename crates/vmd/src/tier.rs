//! The swap **tier stack**: an ordered list of page stores a VMD server
//! places pages into, fastest first.
//!
//! PR 5 bolted a single disk tier onto the server as a hardcoded escape
//! valve (`Tier::Memory | Tier::Disk`). Real cloud swap backends are
//! multi-tier — zswap-like compressed local memory, remote DRAM, SSD,
//! CXL-like far memory — with page heat deciding placement (*Flexible
//! Swapping for the Cloud*, *HMM-V*). This module generalizes the pair
//! into a configurable stack:
//!
//! * [`TierSpec`] — one level: capacity, backing device, nominal cost.
//! * [`TierStackConfig`] — the `Copy` cluster-level description resolved
//!   per server (capacities may be expressed as "the server's DRAM/disk
//!   contribution").
//! * [`HeatPolicy`] — decayed per-page access counters driving promotion
//!   on hit; disabled by default so the legacy stack behaves exactly like
//!   the old two-state enum.
//! * [`TierLedger`] — checked per-tier occupancy accounting. The old
//!   `mem_used -= 1` / `disk_used -= 1` scattered through retain closures
//!   could silently wrap in release builds when a purge raced a demotion;
//!   every decrement now flows through [`TierLedger::remove`], which
//!   debug-asserts and saturates.
//!
//! Placement policy (uniform across stacks, which is what makes a tier
//! split metamorphically invisible — see the tests):
//!
//! * **Promotion** moves a hit page to the *cheapest tier with headroom
//!   that is strictly cheaper* than its current tier — not "one level
//!   up". Two adjacent tiers with identical cost therefore behave exactly
//!   like one merged tier.
//! * **Spill/demotion** targets the cheapest tier with headroom that is
//!   strictly costlier than the source (index order = cost order).

use agile_sim_core::SimDuration;

/// Maximum number of tiers a stack may carry. Fixed so the cluster-level
/// [`TierStackConfig`] stays `Copy` inside `ClusterConfig`.
pub const MAX_TIERS: usize = 4;

/// How a tier's capacity is sized when the stack is resolved per server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TierCapacity {
    /// The server's leased DRAM contribution (the `mem_bytes` argument of
    /// `add_vmd_server`).
    MemContribution,
    /// The server's disk contribution (the `disk_bytes` argument).
    DiskContribution,
    /// A fraction (numerator / denominator) of the server's DRAM
    /// contribution — e.g. a zswap arena carved out of the same DRAM.
    MemFraction(u32, u32),
    /// An absolute page count, independent of the server's contributions.
    Pages(u64),
}

/// The device behind a tier — decides how the executor charges time for
/// an access that is *served* from this tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TierBacking {
    /// Raw server DRAM: nothing beyond the server's lookup delay.
    Dram,
    /// The host's shared SSD block device: accesses queue on the real
    /// [`agile_memory::BlockDevice`], so contention and queueing delays
    /// emerge (the legacy disk tier).
    HostSsd,
    /// A fixed-function device — zswap codec, CXL far memory: every
    /// access pays `latency + page_size / bandwidth`, no queueing.
    Fixed {
        /// Per-page read time.
        read: SimDuration,
        /// Per-page write time.
        write: SimDuration,
    },
}

/// One level of the tier stack, as configured cluster-wide.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TierSpec {
    /// How big this tier is on each server.
    pub capacity: TierCapacity,
    /// The device serving it.
    pub backing: TierBacking,
    /// Nominal per-page read cost used to *rank* tiers (promotion and
    /// demotion targets, the pool manager's relocate-vs-demote decision).
    /// Never charged directly — [`TierBacking`] decides charged time.
    pub read_cost: SimDuration,
}

/// Nominal SSD page-read cost used for ranking the legacy disk tier
/// (roughly a SATA-SSD random 4K read; the *charged* time still comes
/// from the host's queued block device).
pub const NOMINAL_SSD_READ: SimDuration = SimDuration::from_micros(90);

impl TierSpec {
    /// The raw-DRAM head tier sized to the server's memory contribution.
    pub fn dram() -> Self {
        TierSpec {
            capacity: TierCapacity::MemContribution,
            backing: TierBacking::Dram,
            read_cost: SimDuration::ZERO,
        }
    }

    /// The legacy disk tier: the server's disk contribution on the host's
    /// queued SSD.
    pub fn host_ssd() -> Self {
        TierSpec {
            capacity: TierCapacity::DiskContribution,
            backing: TierBacking::HostSsd,
            read_cost: NOMINAL_SSD_READ,
        }
    }

    /// A zswap-like compressed-memory tier: a fraction of the server's
    /// DRAM contribution behind a fixed (de)compression cost.
    pub fn zswap(num: u32, den: u32, decompress: SimDuration, compress: SimDuration) -> Self {
        TierSpec {
            capacity: TierCapacity::MemFraction(num, den),
            backing: TierBacking::Fixed {
                read: decompress,
                write: compress,
            },
            read_cost: decompress,
        }
    }

    /// A CXL-like far-memory tier: `pages` of capacity at a fixed
    /// per-page latency plus the page transfer at `bandwidth_bytes_per_s`.
    pub fn far_memory(
        pages: u64,
        latency: SimDuration,
        bandwidth_bytes_per_s: u64,
        page_size: u64,
    ) -> Self {
        let xfer_ns = page_size.saturating_mul(1_000_000_000) / bandwidth_bytes_per_s.max(1);
        let per_page = latency + SimDuration::from_nanos(xfer_ns);
        TierSpec {
            capacity: TierCapacity::Pages(pages),
            backing: TierBacking::Fixed {
                read: per_page,
                write: per_page,
            },
            read_cost: per_page,
        }
    }

    /// Resolve the configured capacity against a server's contributions.
    pub fn capacity_pages(&self, mem_pages: u64, disk_pages: u64) -> u64 {
        match self.capacity {
            TierCapacity::MemContribution => mem_pages,
            TierCapacity::DiskContribution => disk_pages,
            TierCapacity::MemFraction(num, den) => {
                mem_pages * u64::from(num) / u64::from(den.max(1))
            }
            TierCapacity::Pages(n) => n,
        }
    }
}

/// Decayed per-page access-counter policy.
///
/// Heat is a small EWMA updated on every read or overwrite hit:
/// `heat ← heat − (heat >> decay_shift) + hit_weight`, and ranking reads
/// apply an age decay of one halving per `half_life_accesses` server
/// accesses since the page was last touched. With `enabled = false`
/// (default) pages carry no heat and the server reproduces the legacy
/// policy byte-for-byte: promote on any hit when the head tier has
/// headroom, pick demotion victims in coldest-*namespace* order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeatPolicy {
    /// Heat-driven placement on. Off = legacy behavior.
    pub enabled: bool,
    /// Heat added by one hit.
    pub hit_weight: u16,
    /// EWMA decay shift applied per hit.
    pub decay_shift: u8,
    /// Minimum decayed heat before a hit page is promoted.
    pub promote_min_heat: u16,
    /// Age (in server-wide accesses since last touch) that halves a
    /// page's effective heat when ranking victims.
    pub half_life_accesses: u32,
}

impl Default for HeatPolicy {
    fn default() -> Self {
        HeatPolicy {
            enabled: false,
            hit_weight: 16,
            decay_shift: 2,
            promote_min_heat: 24,
            half_life_accesses: 1024,
        }
    }
}

impl HeatPolicy {
    /// The heat-driven policy with default constants.
    pub fn heat_driven() -> Self {
        HeatPolicy {
            enabled: true,
            ..HeatPolicy::default()
        }
    }

    /// One hit's EWMA update.
    #[inline]
    pub fn bump(&self, heat: u16) -> u16 {
        heat.saturating_sub(heat >> self.decay_shift)
            .saturating_add(self.hit_weight)
    }

    /// Effective heat of a page last touched `age` server accesses ago.
    #[inline]
    pub fn decayed(&self, heat: u16, age: u32) -> u16 {
        let halvings = (age / self.half_life_accesses.max(1)).min(15);
        heat >> halvings
    }
}

/// The cluster-wide tier-stack description: `Copy`, bounded by
/// [`MAX_TIERS`], resolved per server against its contributions. The
/// default is exactly the legacy Memory + Disk pair, so worlds built
/// from `ClusterConfig::default()` replay byte-identically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TierStackConfig {
    tiers: [TierSpec; MAX_TIERS],
    len: u8,
    /// The heat policy every server in the cluster runs.
    pub heat: HeatPolicy,
}

impl TierStackConfig {
    /// The legacy two-tier stack: DRAM contribution + host-SSD disk
    /// contribution, heat disabled.
    pub fn legacy() -> Self {
        TierStackConfig::new(
            &[TierSpec::dram(), TierSpec::host_ssd()],
            HeatPolicy::default(),
        )
    }

    /// A stack from explicit tiers. Tier 0 must be the raw-DRAM head
    /// (the lease applies to it); costs must be non-decreasing.
    pub fn new(tiers: &[TierSpec], heat: HeatPolicy) -> Self {
        assert!(
            !tiers.is_empty() && tiers.len() <= MAX_TIERS,
            "tier stack must have 1..={MAX_TIERS} tiers"
        );
        assert!(
            tiers[0].backing == TierBacking::Dram,
            "tier 0 must be the raw-DRAM head tier"
        );
        for pair in tiers.windows(2) {
            assert!(
                pair[0].read_cost <= pair[1].read_cost,
                "tiers must be ordered fastest-first"
            );
        }
        let mut arr = [TierSpec::dram(); MAX_TIERS];
        arr[..tiers.len()].copy_from_slice(tiers);
        TierStackConfig {
            tiers: arr,
            len: tiers.len() as u8,
            heat,
        }
    }

    /// The configured tiers, in order.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.tiers[..self.len as usize]
    }

    /// Whether this is exactly the legacy default stack.
    pub fn is_legacy(&self) -> bool {
        *self == TierStackConfig::legacy()
    }

    /// Resolve per-server capacities against the server's contributions.
    pub fn resolve(&self, mem_pages: u64, disk_pages: u64) -> Vec<ResolvedTier> {
        self.tiers()
            .iter()
            .map(|t| ResolvedTier {
                capacity_pages: t.capacity_pages(mem_pages, disk_pages),
                backing: t.backing,
                read_cost: t.read_cost,
            })
            .collect()
    }
}

impl Default for TierStackConfig {
    fn default() -> Self {
        TierStackConfig::legacy()
    }
}

/// A tier with its capacity resolved for one concrete server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedTier {
    /// Pages this tier can hold on this server.
    pub capacity_pages: u64,
    /// The device serving it.
    pub backing: TierBacking,
    /// Nominal ranking cost (see [`TierSpec::read_cost`]).
    pub read_cost: SimDuration,
}

/// Checked per-tier occupancy accounting.
///
/// All increments and decrements of a server's tier counters flow through
/// this ledger. A decrement of an empty tier is a bug (historically a
/// silent `u64` wrap in release builds); the ledger debug-asserts and
/// saturates so release builds degrade to a consistent zero instead of a
/// 2^64 page count that wedges every capacity check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TierLedger {
    used: Vec<u64>,
}

impl TierLedger {
    /// A ledger for `n` tiers, all empty.
    pub fn new(n: usize) -> Self {
        TierLedger { used: vec![0; n] }
    }

    /// Pages currently accounted to tier `t`.
    #[inline]
    pub fn used(&self, t: usize) -> u64 {
        self.used[t]
    }

    /// Account one page into tier `t`.
    #[inline]
    pub fn add(&mut self, t: usize) {
        self.used[t] += 1;
    }

    /// Release one page from tier `t`. Underflow is a bug: debug builds
    /// assert, release builds saturate at zero.
    #[inline]
    pub fn remove(&mut self, t: usize) {
        debug_assert!(self.used[t] > 0, "tier {t} occupancy underflow");
        self.used[t] = self.used[t].saturating_sub(1);
    }

    /// Move one page's accounting between tiers.
    #[inline]
    pub fn transfer(&mut self, from: usize, to: usize) {
        self.remove(from);
        self.add(to);
    }

    /// Total pages across all tiers.
    pub fn total(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Pages in every tier below the head (the spill tiers).
    pub fn spill_used(&self) -> u64 {
        self.used.iter().skip(1).sum()
    }

    /// Number of tiers tracked.
    pub fn tiers(&self) -> usize {
        self.used.len()
    }

    /// Reset every tier to empty (server crash wipes the store).
    pub fn clear(&mut self) {
        self.used.iter_mut().for_each(|u| *u = 0);
    }

    /// Check the ledger against a recount (tier index per stored page).
    /// Returns `true` when every tier's counter matches.
    pub fn matches<I: Iterator<Item = u8>>(&self, tiers_of_pages: I) -> bool {
        let mut recount = vec![0u64; self.used.len()];
        for t in tiers_of_pages {
            let Some(slot) = recount.get_mut(t as usize) else {
                return false;
            };
            *slot += 1;
        }
        recount == self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stack_is_legacy_pair() {
        let s = TierStackConfig::default();
        assert!(s.is_legacy());
        assert_eq!(s.tiers().len(), 2);
        assert_eq!(s.tiers()[0].backing, TierBacking::Dram);
        assert_eq!(s.tiers()[1].backing, TierBacking::HostSsd);
        assert!(!s.heat.enabled);
        let resolved = s.resolve(100, 200);
        assert_eq!(resolved[0].capacity_pages, 100);
        assert_eq!(resolved[1].capacity_pages, 200);
    }

    #[test]
    fn capacity_resolution_modes() {
        assert_eq!(TierSpec::dram().capacity_pages(64, 7), 64);
        assert_eq!(TierSpec::host_ssd().capacity_pages(64, 7), 7);
        let z = TierSpec::zswap(
            1,
            4,
            SimDuration::from_micros(3),
            SimDuration::from_micros(5),
        );
        assert_eq!(z.capacity_pages(64, 7), 16);
        let f = TierSpec::far_memory(33, SimDuration::from_micros(2), u64::MAX, 4096);
        assert_eq!(f.capacity_pages(64, 7), 33);
    }

    #[test]
    fn far_memory_cost_includes_transfer() {
        // 4 KiB at 16 GiB/s ≈ 238 ns on top of the 2 µs latency.
        let f = TierSpec::far_memory(1, SimDuration::from_micros(2), 16 << 30, 4096);
        assert!(f.read_cost > SimDuration::from_micros(2));
        assert!(f.read_cost < SimDuration::from_micros(3));
    }

    #[test]
    #[should_panic(expected = "fastest-first")]
    fn unordered_stack_rejected() {
        let mut slow = TierSpec::host_ssd();
        slow.read_cost = SimDuration::from_millis(1);
        TierStackConfig::new(
            &[TierSpec::dram(), slow, TierSpec::host_ssd()],
            HeatPolicy::default(),
        );
    }

    #[test]
    fn heat_bump_and_decay() {
        let h = HeatPolicy::heat_driven();
        let mut heat = 0u16;
        heat = h.bump(heat);
        assert_eq!(heat, 16);
        heat = h.bump(heat);
        assert_eq!(heat, 28); // 16 - 4 + 16: crosses promote_min_heat = 24
        assert!(heat >= h.promote_min_heat);
        // Age decay halves per half-life.
        assert_eq!(h.decayed(28, 0), 28);
        assert_eq!(h.decayed(28, 1024), 14);
        assert_eq!(h.decayed(28, 4096), 1);
    }

    #[test]
    fn ledger_tracks_adds_removes_transfers() {
        let mut l = TierLedger::new(3);
        l.add(0);
        l.add(0);
        l.add(2);
        assert_eq!(l.used(0), 2);
        assert_eq!(l.total(), 3);
        assert_eq!(l.spill_used(), 1);
        l.transfer(0, 1);
        assert_eq!(l.used(0), 1);
        assert_eq!(l.used(1), 1);
        assert!(l.matches([0u8, 1, 2].into_iter()));
        assert!(!l.matches([0u8, 1, 1].into_iter()));
        l.clear();
        assert_eq!(l.total(), 0);
    }

    /// The satellite-1 regression: the historical unchecked `-= 1` wrapped
    /// to ~2^64 on a double-remove in release builds; the ledger saturates
    /// (and debug-asserts) instead, so capacity math stays sane.
    #[test]
    fn ledger_remove_saturates_never_wraps() {
        let mut l = TierLedger::new(2);
        l.add(1);
        l.remove(1);
        // A second remove is the bug condition. In release builds it must
        // leave the counter at zero, not u64::MAX (the pre-fix behavior of
        // the raw `disk_used -= 1`).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.remove(1);
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug build must assert on underflow");
        } else {
            assert!(result.is_ok());
        }
        assert_eq!(l.used(1), 0, "occupancy must saturate, not wrap");
        assert_eq!(l.total(), 0);
    }
}
