//! Elastic pool-manager logic: contribution leases and rebalance planning.
//!
//! The paper's VMD aggregates the *spare* memory of intermediate hosts
//! (§IV) — but spare is a moving target: when a donor host's own workloads
//! grow it must be able to take its DRAM back. This module holds the pure
//! (sans-IO, deterministic) half of the pool manager:
//!
//! - [`LeaseController`] sizes one server's contribution lease from its
//!   host's demand samples, following the `SwapActivityMonitor` contract
//!   from `agile-wss`: the first sample only primes the window, shrinks
//!   act on the latest sample (taking DRAM back must be fast), and growth
//!   requires two consecutive spacious samples (hysteresis against flap).
//! - [`PoolPlanner`] decides skew-aware rebalance moves: when the spread
//!   between the most- and least-utilized server crosses a threshold, it
//!   names a deterministic `(from, to)` pair.
//!
//! The cluster-side executor (`agile-cluster`'s `poolctl`) owns the clocked
//! loop: it feeds host-ledger samples in, applies the resulting leases to
//! [`crate::server::VmdServer`]s, and drives the relocation pump.

/// Tuning for one server's lease controller.
#[derive(Clone, Copy, Debug)]
pub struct LeaseConfig {
    /// Ignore lease deltas smaller than this (pages) — gossip churn from
    /// sub-deadband wobble costs more than it saves.
    pub deadband_pages: u64,
    /// Maximum lease change per sample (pages): slew limit so one noisy
    /// sample cannot trigger a cluster-wide reclaim storm.
    pub max_step_pages: u64,
    /// Never lease below this floor (pages), even under full donor demand.
    pub floor_pages: u64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            deadband_pages: 16,
            // 4 GiB of 4 KiB pages per tick: fast enough to track real
            // demand swings, slow enough to pace the reclaim pump.
            max_step_pages: 1 << 20,
            floor_pages: 0,
        }
    }
}

/// Sizes one server's contribution lease from donor-demand samples.
#[derive(Clone, Copy, Debug)]
pub struct LeaseController {
    cfg: LeaseConfig,
    /// Instantaneous target from the previous sample (None = unprimed).
    prev_target: Option<u64>,
}

impl LeaseController {
    /// New controller (unprimed: the first sample leaves the lease alone).
    pub fn new(cfg: LeaseConfig) -> Self {
        LeaseController {
            cfg,
            prev_target: None,
        }
    }

    /// Feed one sample of the donor host's spare capacity (pages left
    /// after the host's own demand) and get the new lease. `capacity` is
    /// the server's raw contribution ceiling, `current` its present lease.
    pub fn on_sample(&mut self, capacity: u64, spare_pages: u64, current: u64) -> u64 {
        let floor = self.cfg.floor_pages.min(capacity);
        let inst = spare_pages.min(capacity).max(floor);
        let prev = self.prev_target.replace(inst);
        let Some(prev) = prev else {
            // First sample primes the window (SwapActivityMonitor contract).
            return current;
        };
        let target = if inst > current {
            // Growing gives DRAM back to the pool: require two consecutive
            // spacious samples so a transient dip in donor demand doesn't
            // re-donate memory that is about to be taken back.
            inst.min(prev.max(current))
        } else {
            // Shrinking protects the donor: act on the latest sample.
            inst
        };
        let step = |from: u64, to: u64| -> u64 {
            if to >= from {
                from + (to - from).min(self.cfg.max_step_pages)
            } else {
                from - (from - to).min(self.cfg.max_step_pages)
            }
        };
        let next = step(current, target);
        if next.abs_diff(current) < self.cfg.deadband_pages {
            current
        } else {
            next
        }
    }

    /// Forget the sample window (donor host rebooted / server rejoined).
    pub fn reset(&mut self) {
        self.prev_target = None;
    }
}

/// One server's load as seen by the planner.
#[derive(Clone, Copy, Debug)]
pub struct ServerLoad {
    /// Server id (`ServerId.0`).
    pub server: u32,
    /// DRAM-tier pages in use.
    pub stored_mem_pages: u64,
    /// Current contribution lease, pages.
    pub lease_pages: u64,
}

impl ServerLoad {
    /// DRAM utilization against the lease. A zero lease that still holds
    /// pages counts as fully utilized (it is pure reclaim backlog).
    pub fn utilization(&self) -> f64 {
        if self.lease_pages == 0 {
            if self.stored_mem_pages > 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.stored_mem_pages as f64 / self.lease_pages as f64
        }
    }
}

/// Max minus min per-server utilization (0 with fewer than two servers).
pub fn utilization_spread(loads: &[ServerLoad]) -> f64 {
    if loads.len() < 2 {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for l in loads {
        let u = l.utilization();
        lo = lo.min(u);
        hi = hi.max(u);
    }
    hi - lo
}

/// Pool-wide DRAM pressure: total stored against total leased capacity.
pub fn pool_pressure(loads: &[ServerLoad]) -> f64 {
    let stored: u64 = loads.iter().map(|l| l.stored_mem_pages).sum();
    let leased: u64 = loads.iter().map(|l| l.lease_pages).sum();
    if leased == 0 {
        if stored > 0 {
            1.0
        } else {
            0.0
        }
    } else {
        stored as f64 / leased as f64
    }
}

/// Where the reclaim pump should send one over-lease victim page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReclaimTarget {
    /// Move the page to another server's DRAM (network relocation).
    Relocate,
    /// Demote the page down this server's own tier stack.
    Demote,
}

/// Nominal per-page cost of relocating a victim to another server's DRAM:
/// a pinned read plus a copy write — two propagation delays, one server
/// lookup, and the page crossing the wire once.
pub fn relocation_cost(
    prop_delay: agile_sim_core::SimDuration,
    server_delay: agile_sim_core::SimDuration,
    page_bytes: u64,
    link_bytes_per_s: u64,
) -> agile_sim_core::SimDuration {
    let transfer = match page_bytes
        .saturating_mul(1_000_000_000)
        .checked_div(link_bytes_per_s)
    {
        Some(ns) => agile_sim_core::SimDuration::from_nanos(ns),
        None => agile_sim_core::SimDuration::ZERO,
    };
    prop_delay + prop_delay + server_delay + transfer
}

/// Cost-aware reclaim decision (tier-stack mode): weigh demoting a victim
/// into this server's own cheapest lower tier against relocating it to
/// another server's DRAM. `demotion_cost` is
/// [`crate::server::VmdServer::best_demotion_cost`] (`None` when every
/// lower tier is full); `remote_headroom` says whether any other server
/// has free leased DRAM. Ties prefer relocation — DRAM served remotely
/// still beats an equal-cost local device on later repeat faults.
pub fn reclaim_target(
    demotion_cost: Option<agile_sim_core::SimDuration>,
    remote_headroom: bool,
    relocation: agile_sim_core::SimDuration,
) -> ReclaimTarget {
    if !remote_headroom {
        return ReclaimTarget::Demote;
    }
    match demotion_cost {
        None => ReclaimTarget::Relocate,
        Some(demote) => {
            if relocation <= demote {
                ReclaimTarget::Relocate
            } else {
                ReclaimTarget::Demote
            }
        }
    }
}

/// Skew-aware rebalance planner.
#[derive(Clone, Copy, Debug)]
pub struct PoolPlanner {
    /// Move slots only when the utilization spread exceeds this.
    pub threshold: f64,
}

impl PoolPlanner {
    /// Plan one move from the most- to the least-utilized server, or None
    /// when the spread is within the threshold (or no useful move exists).
    /// Ties break to the earliest entry — callers pass loads sorted by
    /// server id, so identical loads give identical plans.
    pub fn rebalance_move(&self, loads: &[ServerLoad]) -> Option<(u32, u32)> {
        if loads.len() < 2 {
            return None;
        }
        let mut hi = &loads[0];
        let mut lo = &loads[0];
        for l in &loads[1..] {
            if l.utilization() > hi.utilization() {
                hi = l;
            }
            if l.utilization() < lo.utilization() {
                lo = l;
            }
        }
        if hi.server == lo.server
            || hi.utilization() - lo.utilization() <= self.threshold
            || hi.stored_mem_pages == 0
            || lo.stored_mem_pages >= lo.lease_pages
        {
            return None;
        }
        Some((hi.server, lo.server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            deadband_pages: 4,
            max_step_pages: 100,
            floor_pages: 0,
        }
    }

    #[test]
    fn first_sample_primes_without_adjusting() {
        let mut c = LeaseController::new(cfg());
        assert_eq!(c.on_sample(1000, 10, 1000), 1000);
    }

    #[test]
    fn shrink_acts_on_latest_sample() {
        let mut c = LeaseController::new(cfg());
        c.on_sample(1000, 1000, 1000);
        assert_eq!(c.on_sample(1000, 950, 1000), 950, "one low sample shrinks");
    }

    #[test]
    fn growth_needs_two_spacious_samples() {
        let mut c = LeaseController::new(LeaseConfig {
            max_step_pages: 1000,
            ..cfg()
        });
        c.on_sample(1000, 500, 1000);
        let lease = c.on_sample(1000, 500, 1000);
        assert_eq!(lease, 500);
        // Demand recedes: the first spacious sample is not trusted yet…
        assert_eq!(c.on_sample(1000, 600, lease), 500);
        // …the second one is.
        assert_eq!(c.on_sample(1000, 600, lease), 600);
    }

    #[test]
    fn steps_are_slew_limited() {
        let mut c = LeaseController::new(cfg());
        c.on_sample(1000, 0, 1000);
        assert_eq!(c.on_sample(1000, 0, 1000), 900, "≤ max_step per sample");
        assert_eq!(c.on_sample(1000, 0, 900), 800);
    }

    #[test]
    fn deadband_suppresses_wobble() {
        let mut c = LeaseController::new(cfg());
        c.on_sample(1000, 500, 500);
        assert_eq!(c.on_sample(1000, 498, 500), 500, "sub-deadband: hold");
    }

    #[test]
    fn floor_bounds_the_shrink() {
        let mut c = LeaseController::new(LeaseConfig {
            floor_pages: 300,
            ..cfg()
        });
        c.on_sample(1000, 0, 400);
        assert_eq!(c.on_sample(1000, 0, 400), 300);
        assert_eq!(c.on_sample(1000, 0, 300), 300, "never below the floor");
    }

    #[test]
    fn target_clamps_to_capacity() {
        let mut c = LeaseController::new(cfg());
        c.on_sample(1000, 5000, 900);
        assert_eq!(
            c.on_sample(1000, 5000, 900),
            1000,
            "spare beyond capacity cannot over-lease"
        );
    }

    fn load(server: u32, stored: u64, lease: u64) -> ServerLoad {
        ServerLoad {
            server,
            stored_mem_pages: stored,
            lease_pages: lease,
        }
    }

    #[test]
    fn spread_and_pressure() {
        let loads = [load(0, 90, 100), load(1, 10, 100)];
        assert!((utilization_spread(&loads) - 0.8).abs() < 1e-12);
        assert!((pool_pressure(&loads) - 0.5).abs() < 1e-12);
        assert_eq!(utilization_spread(&loads[..1]), 0.0);
        assert_eq!(pool_pressure(&[]), 0.0);
    }

    #[test]
    fn zero_lease_counts_as_full() {
        assert_eq!(load(0, 5, 0).utilization(), 1.0);
        assert_eq!(load(0, 0, 0).utilization(), 0.0);
    }

    #[test]
    fn planner_moves_hot_to_cold_above_threshold() {
        let p = PoolPlanner { threshold: 0.15 };
        let loads = [load(0, 50, 100), load(1, 90, 100), load(2, 20, 100)];
        assert_eq!(p.rebalance_move(&loads), Some((1, 2)));
        // Within threshold: no move.
        let even = [load(0, 50, 100), load(1, 55, 100)];
        assert_eq!(p.rebalance_move(&even), None);
    }

    #[test]
    fn planner_ties_break_to_lowest_id() {
        let p = PoolPlanner { threshold: 0.1 };
        let loads = [
            load(3, 90, 100),
            load(1, 90, 100),
            load(2, 10, 100),
            load(4, 10, 100),
        ];
        assert_eq!(
            p.rebalance_move(&loads),
            Some((3, 2)),
            "first max and first min in input order win"
        );
    }

    #[test]
    fn planner_skips_full_destination() {
        let p = PoolPlanner { threshold: 0.1 };
        // The least-utilized server has no lease headroom: nothing to do.
        let loads = [load(0, 100, 100), load(1, 40, 40)];
        assert_eq!(p.rebalance_move(&loads), None);
    }

    #[test]
    fn reclaim_prefers_cheap_local_tier_over_slow_network() {
        use agile_sim_core::SimDuration;
        // 50 µs propagation each way + 40 µs lookup + 4 KiB over 1 Gb/s
        // (~33 µs) ≈ 173 µs per relocated page.
        let reloc = relocation_cost(
            SimDuration::from_micros(50),
            SimDuration::from_micros(40),
            4096,
            125_000_000,
        );
        assert_eq!(reloc, SimDuration::from_nanos(172_768));
        // A 2 µs CXL-like tier beats the network: demote locally.
        assert_eq!(
            reclaim_target(Some(SimDuration::from_micros(2)), true, reloc),
            ReclaimTarget::Demote
        );
        // A 90 µs SSD tier is still cheaper than 173 µs of network.
        assert_eq!(
            reclaim_target(Some(SimDuration::from_micros(90)), true, reloc),
            ReclaimTarget::Demote
        );
        // A 5 ms cold-HDD tier loses to remote DRAM: relocate.
        assert_eq!(
            reclaim_target(Some(SimDuration::from_millis(5)), true, reloc),
            ReclaimTarget::Relocate
        );
        // Local tiers full: relocate; no remote headroom either: demote
        // (the pump will find nothing to do and stall-count instead).
        assert_eq!(reclaim_target(None, true, reloc), ReclaimTarget::Relocate);
        assert_eq!(
            reclaim_target(Some(SimDuration::from_micros(2)), false, reloc),
            ReclaimTarget::Demote
        );
    }
}
