//! Trace events and the ring-buffer tracer.
//!
//! Events are small `Copy` values stamped with the simulated time they
//! occurred at. The [`Tracer`] is embedded in the cluster `World`; every
//! instrumentation point calls [`Tracer::record`], which is a single
//! branch when tracing is disabled (the disabled tracer owns no buffer,
//! so the hot loop allocates nothing).

use agile_sim_core::SimTime;

/// Which path a destination page fault resolved through (§III-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPath {
    /// The page had already arrived (stream or earlier fault).
    AlreadyHere,
    /// Demand-paged from the source over the migration connection.
    FromSource,
    /// Read from the portable per-VM swap device (the VMD) — the Agile
    /// cold-page path that never touches the migration TCP connection.
    FromSwap,
    /// Never-populated page, zero-filled locally.
    ZeroFill,
}

impl FaultPath {
    /// Stable lower-snake name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            FaultPath::AlreadyHere => "already_here",
            FaultPath::FromSource => "from_source",
            FaultPath::FromSwap => "from_swap",
            FaultPath::ZeroFill => "zero_fill",
        }
    }
}

/// Chaos fault families (payload-free mirror of `agile-chaos`'s kinds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosKind {
    /// An intermediate/VMD host crashed.
    ServerCrash,
    /// A crashed host rejoined.
    ServerRejoin,
    /// A NIC was degraded or partitioned.
    NicDegrade,
    /// A degraded NIC was restored.
    NicRestore,
    /// Swap-device latency spike began.
    SwapSlow,
    /// Swap-device latency spike ended.
    SwapRestore,
    /// Every TCP connection of a migration dropped.
    MigConnDrop,
}

impl ChaosKind {
    /// Stable lower-snake name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::ServerCrash => "server_crash",
            ChaosKind::ServerRejoin => "server_rejoin",
            ChaosKind::NicDegrade => "nic_degrade",
            ChaosKind::NicRestore => "nic_restore",
            ChaosKind::SwapSlow => "swap_slow",
            ChaosKind::SwapRestore => "swap_restore",
            ChaosKind::MigConnDrop => "mig_conn_drop",
        }
    }
}

/// What the cluster scheduler did with one watermark-selected VM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedAction {
    /// A migration started toward the chosen destination.
    Start,
    /// The admission cap was full; the selection joined the FIFO queue.
    Queue,
    /// No destination passed placement + ping-pong guard; retry next tick.
    Defer,
    /// A queued selection was dropped — its host recovered while waiting.
    Drop,
    /// The cycle predictor deferred the selection to a predicted
    /// workload trough (see the companion `sched_defer` trace event).
    TroughDefer,
}

impl SchedAction {
    /// Stable lower-snake name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            SchedAction::Start => "start",
            SchedAction::Queue => "queue",
            SchedAction::Defer => "defer",
            SchedAction::Drop => "drop",
            SchedAction::TroughDefer => "trough_defer",
        }
    }
}

/// VMD client completion families.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmdKind {
    /// A page read completed.
    ReadDone,
    /// An eviction write-back completed.
    WriteDone,
    /// Every replica of a read's slot was unreachable: content lost.
    ReadFailed,
    /// A read was NAKed; the client fails over to another replica.
    ReadNak,
    /// A write was NAKed; the client re-places the slot.
    WriteNak,
    /// A background re-replication read landed; the repair write follows.
    RepairWrite,
    /// A pool-reclaim relocation read landed; the copy-out write follows.
    RelocateWrite,
    /// A relocation completed: the slot's replica moved to a new server.
    RelocateDone,
    /// A relocation was abandoned (source crashed, slot overwritten, or no
    /// destination had leased headroom).
    RelocateAbort,
}

impl VmdKind {
    /// Stable lower-snake name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            VmdKind::ReadDone => "read_done",
            VmdKind::WriteDone => "write_done",
            VmdKind::ReadFailed => "read_failed",
            VmdKind::ReadNak => "read_nak",
            VmdKind::WriteNak => "write_nak",
            VmdKind::RepairWrite => "repair_write",
            VmdKind::RelocateWrite => "relocate_write",
            VmdKind::RelocateDone => "relocate_done",
            VmdKind::RelocateAbort => "relocate_abort",
        }
    }
}

/// One traced occurrence. Everything is `Copy`; recording never allocates
/// beyond the ring buffer itself.
#[derive(Clone, Copy, Debug)]
pub enum TraceEvent {
    /// A migration attempt started (attempt 0 is the first).
    MigStart {
        /// Migration index.
        mig: u32,
        /// Technique name ("pre-copy", "post-copy", "agile").
        technique: &'static str,
        /// Attempt number (bumped by connection-drop retries).
        attempt: u32,
    },
    /// The VM was suspended at the source (downtime begins).
    MigSuspend {
        /// Migration index.
        mig: u32,
    },
    /// The CPU-state handoff message was put on the wire.
    MigHandoff {
        /// Migration index.
        mig: u32,
        /// Handoff bytes (CPU/device state + dirty bitmap).
        wire_bytes: u64,
    },
    /// The VM resumed at the destination (downtime ends).
    MigResume {
        /// Migration index.
        mig: u32,
    },
    /// The migration finalized: source released.
    MigComplete {
        /// Migration index.
        mig: u32,
    },
    /// A pre-resume connection drop aborted the attempt; a retry follows.
    MigAbort {
        /// Migration index.
        mig: u32,
        /// The attempt number after the bump (the retry's number).
        attempt: u32,
    },
    /// A post-resume connection drop; the migration finalizes degraded.
    MigDegraded {
        /// Migration index.
        mig: u32,
        /// Pages zero-filled because no copy survived anywhere.
        pages_lost: u64,
    },
    /// A chunk was put on the migration channel.
    ChunkSent {
        /// Migration index.
        mig: u32,
        /// Full pages carried.
        full: u32,
        /// SWAPPED-flag offset markers carried (Agile).
        offsets: u32,
        /// Zero-page markers carried.
        zeros: u32,
        /// Entries that re-send a previously shipped page.
        retransmits: u32,
        /// Bytes on the wire.
        wire_bytes: u64,
        /// Demand-response priority (dedicated demand channel).
        priority: bool,
    },
    /// The destination demand-requested a page from the source.
    DemandRequest {
        /// Migration index.
        mig: u32,
        /// Faulted guest page.
        pfn: u32,
    },
    /// A priority (demand-response) chunk arrived at the destination.
    DemandServed {
        /// Migration index.
        mig: u32,
        /// The page that was served.
        pfn: u32,
    },
    /// A destination page fault was routed.
    FaultRouted {
        /// VM index.
        vm: u32,
        /// Faulted guest page.
        pfn: u32,
        /// Resolution path.
        path: FaultPath,
    },
    /// The WSS controller acted on a swap-I/O rate sample (§IV-D).
    WssSample {
        /// VM index.
        vm: u32,
        /// Sampled swap I/O rate in KB/s.
        rate_kbps: f64,
        /// Reservation the controller set, in bytes.
        reservation: u64,
        /// Whether the controller considers the estimate stable.
        stable: bool,
    },
    /// A WSS estimator tick with simulated-PML epoch tracking armed:
    /// the estimator's view next to the exact ground truth. Emitted only
    /// when a VM's memory image has epoch tracking armed (the estimator
    /// A/B harness) — legacy runs never record it.
    WssEstimate {
        /// VM index.
        vm: u32,
        /// Estimator short name ("swap_io", "pml", "ground_truth").
        estimator: &'static str,
        /// The estimator's working-set estimate in bytes (for swap-I/O,
        /// the reservation it sized — §IV-D's hover-above-WSS estimate).
        est_bytes: u64,
        /// Exact distinct bytes touched this epoch (ground truth).
        truth_bytes: u64,
        /// Reservation applied this tick, in bytes.
        reservation: u64,
        /// Whether the simulated PML log overflowed this epoch.
        overflowed: bool,
    },
    /// A chaos fault fired. `start == true` opens a fault window
    /// (crash/degrade/slow/drop); `false` closes one (rejoin/restore).
    ChaosFault {
        /// Fault family.
        kind: ChaosKind,
        /// Target index (host, NIC node, VM, or migration — per kind).
        target: u32,
        /// Window open (true) or close (false).
        start: bool,
    },
    /// A VMD client request completed (or failed over / repaired).
    Vmd {
        /// Client index.
        client: u32,
        /// Completion family.
        kind: VmdKind,
    },
    /// The pool manager resized one server's contribution lease.
    PoolLease {
        /// Server index.
        server: u32,
        /// New lease, pages.
        lease_pages: u64,
        /// True when the lease shrank (donor demand grew).
        shrink: bool,
    },
    /// One pool tick's reclaim work on an over-lease server.
    PoolReclaim {
        /// Server index.
        server: u32,
        /// Relocations issued this tick.
        relocated: u32,
        /// Pages demoted to the disk tier this tick.
        demoted: u32,
    },
    /// The rebalancer moved slots from the most- to least-utilized server.
    PoolRebalance {
        /// Source (hot) server index.
        from: u32,
        /// Destination (cold) server index.
        to: u32,
        /// Relocations issued.
        pages: u32,
    },
    /// The cluster scheduler acted on one watermark-selected VM.
    SchedDecision {
        /// VM index.
        vm: u32,
        /// Source (overloaded) host.
        src: u32,
        /// Chosen destination host; `u32::MAX` when no destination was
        /// involved (queue/defer/drop), exported as `-1`.
        dest: u32,
        /// What the scheduler did.
        action: SchedAction,
    },
    /// The cycle predictor deferred a watermark-selected VM to a
    /// predicted workload trough instead of firing it immediately.
    SchedDefer {
        /// VM index.
        vm: u32,
        /// Source (overloaded) host.
        src: u32,
        /// When the deferred migration will fire, in sim nanoseconds.
        fire_t_ns: u64,
        /// True when the predicted trough fell outside the bounded
        /// deferral window and the firing time was clamped to its end
        /// (the naive fallback).
        clamped: bool,
    },
    /// A VMD namespace was forked: `clone` now shares `master`'s pages
    /// read-only (copy-on-write scale-out, §IV extension).
    NsFork {
        /// The sealed master namespace.
        master: u32,
        /// The new clone namespace.
        clone: u32,
    },
    /// A clone's first write to a shared page broke the share: the clone
    /// dropped its reference and wrote a private overlay copy.
    CowBreak {
        /// The clone namespace whose write broke the share.
        ns: u32,
        /// Slot within the namespace.
        slot: u32,
    },
    /// The clone controller spawned a VM from a forked namespace.
    CloneSpawn {
        /// Clone index within the controller.
        clone: u32,
        /// VM slot index of the spawned clone.
        vm: u32,
        /// Destination host index.
        host: u32,
    },
    /// A spawned clone served its first request (time-to-ready).
    CloneReady {
        /// Clone index within the controller.
        clone: u32,
        /// VM slot index.
        vm: u32,
    },
    /// The clone controller tore a clone down (trough): its namespace was
    /// purged and every shared-page reference dropped.
    CloneTeardown {
        /// Clone index within the controller.
        clone: u32,
        /// VM slot index.
        vm: u32,
    },
}

impl TraceEvent {
    /// Stable lower-snake event name (the `"ev"` field of the export).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::MigStart { .. } => "mig_start",
            TraceEvent::MigSuspend { .. } => "mig_suspend",
            TraceEvent::MigHandoff { .. } => "mig_handoff",
            TraceEvent::MigResume { .. } => "mig_resume",
            TraceEvent::MigComplete { .. } => "mig_complete",
            TraceEvent::MigAbort { .. } => "mig_abort",
            TraceEvent::MigDegraded { .. } => "mig_degraded",
            TraceEvent::ChunkSent { .. } => "chunk_sent",
            TraceEvent::DemandRequest { .. } => "demand_request",
            TraceEvent::DemandServed { .. } => "demand_served",
            TraceEvent::FaultRouted { .. } => "fault_routed",
            TraceEvent::WssSample { .. } => "wss_sample",
            TraceEvent::WssEstimate { .. } => "wss_estimate",
            TraceEvent::ChaosFault { .. } => "chaos_fault",
            TraceEvent::Vmd { .. } => "vmd",
            TraceEvent::PoolLease { .. } => "pool_lease",
            TraceEvent::PoolReclaim { .. } => "pool_reclaim",
            TraceEvent::PoolRebalance { .. } => "pool_rebalance",
            TraceEvent::SchedDecision { .. } => "sched_decision",
            TraceEvent::SchedDefer { .. } => "sched_defer",
            TraceEvent::NsFork { .. } => "ns_fork",
            TraceEvent::CowBreak { .. } => "cow_break",
            TraceEvent::CloneSpawn { .. } => "clone_spawn",
            TraceEvent::CloneReady { .. } => "clone_ready",
            TraceEvent::CloneTeardown { .. } => "clone_teardown",
        }
    }

    /// Append this event's payload fields as `,"k":v` JSON pairs.
    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEvent::MigStart {
                mig,
                technique,
                attempt,
            } => {
                let _ = write!(
                    out,
                    ",\"mig\":{mig},\"technique\":\"{technique}\",\"attempt\":{attempt}"
                );
            }
            TraceEvent::MigSuspend { mig }
            | TraceEvent::MigResume { mig }
            | TraceEvent::MigComplete { mig } => {
                let _ = write!(out, ",\"mig\":{mig}");
            }
            TraceEvent::MigHandoff { mig, wire_bytes } => {
                let _ = write!(out, ",\"mig\":{mig},\"wire_bytes\":{wire_bytes}");
            }
            TraceEvent::MigAbort { mig, attempt } => {
                let _ = write!(out, ",\"mig\":{mig},\"attempt\":{attempt}");
            }
            TraceEvent::MigDegraded { mig, pages_lost } => {
                let _ = write!(out, ",\"mig\":{mig},\"pages_lost\":{pages_lost}");
            }
            TraceEvent::ChunkSent {
                mig,
                full,
                offsets,
                zeros,
                retransmits,
                wire_bytes,
                priority,
            } => {
                let _ = write!(
                    out,
                    ",\"mig\":{mig},\"full\":{full},\"offsets\":{offsets},\"zeros\":{zeros},\
                     \"retransmits\":{retransmits},\"wire_bytes\":{wire_bytes},\
                     \"priority\":{priority}"
                );
            }
            TraceEvent::DemandRequest { mig, pfn } | TraceEvent::DemandServed { mig, pfn } => {
                let _ = write!(out, ",\"mig\":{mig},\"pfn\":{pfn}");
            }
            TraceEvent::FaultRouted { vm, pfn, path } => {
                let _ = write!(
                    out,
                    ",\"vm\":{vm},\"pfn\":{pfn},\"path\":\"{}\"",
                    path.name()
                );
            }
            TraceEvent::WssSample {
                vm,
                rate_kbps,
                reservation,
                stable,
            } => {
                // `{:?}` on f64 prints the shortest exact round-trip form,
                // so the export stays byte-deterministic per seed.
                let _ = write!(
                    out,
                    ",\"vm\":{vm},\"rate_kbps\":{rate_kbps:?},\"reservation\":{reservation},\
                     \"stable\":{stable}"
                );
            }
            TraceEvent::WssEstimate {
                vm,
                estimator,
                est_bytes,
                truth_bytes,
                reservation,
                overflowed,
            } => {
                let _ = write!(
                    out,
                    ",\"vm\":{vm},\"estimator\":\"{estimator}\",\"est_bytes\":{est_bytes},\
                     \"truth_bytes\":{truth_bytes},\"reservation\":{reservation},\
                     \"overflowed\":{overflowed}"
                );
            }
            TraceEvent::ChaosFault {
                kind,
                target,
                start,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"{}\",\"target\":{target},\"start\":{start}",
                    kind.name()
                );
            }
            TraceEvent::Vmd { client, kind } => {
                let _ = write!(out, ",\"client\":{client},\"kind\":\"{}\"", kind.name());
            }
            TraceEvent::PoolLease {
                server,
                lease_pages,
                shrink,
            } => {
                let _ = write!(
                    out,
                    ",\"server\":{server},\"lease_pages\":{lease_pages},\"shrink\":{shrink}"
                );
            }
            TraceEvent::PoolReclaim {
                server,
                relocated,
                demoted,
            } => {
                let _ = write!(
                    out,
                    ",\"server\":{server},\"relocated\":{relocated},\"demoted\":{demoted}"
                );
            }
            TraceEvent::PoolRebalance { from, to, pages } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to},\"pages\":{pages}");
            }
            TraceEvent::SchedDecision {
                vm,
                src,
                dest,
                action,
            } => {
                let dest = if dest == u32::MAX {
                    -1
                } else {
                    i64::from(dest)
                };
                let _ = write!(
                    out,
                    ",\"vm\":{vm},\"src\":{src},\"dest\":{dest},\"action\":\"{}\"",
                    action.name()
                );
            }
            TraceEvent::SchedDefer {
                vm,
                src,
                fire_t_ns,
                clamped,
            } => {
                let _ = write!(
                    out,
                    ",\"vm\":{vm},\"src\":{src},\"fire_t_ns\":{fire_t_ns},\"clamped\":{clamped}"
                );
            }
            TraceEvent::NsFork { master, clone } => {
                let _ = write!(out, ",\"master\":{master},\"clone\":{clone}");
            }
            TraceEvent::CowBreak { ns, slot } => {
                let _ = write!(out, ",\"ns\":{ns},\"slot\":{slot}");
            }
            TraceEvent::CloneSpawn { clone, vm, host } => {
                let _ = write!(out, ",\"clone\":{clone},\"vm\":{vm},\"host\":{host}");
            }
            TraceEvent::CloneReady { clone, vm } | TraceEvent::CloneTeardown { clone, vm } => {
                let _ = write!(out, ",\"clone\":{clone},\"vm\":{vm}");
            }
        }
    }
}

/// Ring-buffer event sink keyed on simulated time.
///
/// A disabled tracer (the default) owns no buffer; [`Tracer::record`]
/// returns after one branch. An enabled tracer keeps the most recent
/// `capacity` events, counting what it overwrote in
/// [`Tracer::dropped`].
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    head: usize,
    events: Vec<(SimTime, TraceEvent)>,
    dropped: u64,
}

impl Tracer {
    /// The no-op tracer: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            enabled: true,
            cap: capacity,
            head: 0,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether recording is on. Instrumentation sites use this to skip
    /// computing event payloads entirely when tracing is off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record `ev` at simulated time `at`. A no-op on a disabled tracer.
    #[inline]
    pub fn record(&mut self, at: SimTime, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push((at, ev));
        } else {
            self.events[self.head] = (at, ev);
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        let (tail, head) = self.events.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events whose name is `name`.
    pub fn count_named(&self, name: &str) -> usize {
        self.events().filter(|(_, e)| e.name() == name).count()
    }

    /// Render the retained events as JSON Lines, oldest first. Timestamps
    /// are integer nanoseconds, so the output is byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.events.len() * 96);
        for (t, ev) in self.events() {
            let _ = write!(out, "{{\"t_ns\":{},\"ev\":\"{}\"", t.as_nanos(), ev.name());
            ev.write_fields(&mut out);
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, TraceEvent::MigSuspend { mig: 0 });
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
        // The disabled tracer never allocated a buffer.
        assert_eq!(t.events.capacity(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = Tracer::with_capacity(3);
        for i in 0..5u32 {
            t.record(
                SimTime::from_nanos(u64::from(i)),
                TraceEvent::MigSuspend { mig: i },
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let migs: Vec<u32> = t
            .events()
            .map(|(_, e)| match e {
                TraceEvent::MigSuspend { mig } => *mig,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(migs, vec![2, 3, 4], "oldest events were overwritten");
    }

    #[test]
    fn jsonl_shape_and_determinism() {
        let build = || {
            let mut t = Tracer::with_capacity(8);
            t.record(
                SimTime::from_millis(1),
                TraceEvent::ChunkSent {
                    mig: 0,
                    full: 256,
                    offsets: 0,
                    zeros: 3,
                    retransmits: 1,
                    wire_bytes: 1_052_736,
                    priority: false,
                },
            );
            t.record(
                SimTime::from_millis(2),
                TraceEvent::WssSample {
                    vm: 1,
                    rate_kbps: 1536.5,
                    reservation: 1 << 30,
                    stable: true,
                },
            );
            t.to_jsonl()
        };
        let a = build();
        assert_eq!(a, build(), "same inputs render byte-identically");
        let mut lines = a.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":1000000,\"ev\":\"chunk_sent\",\"mig\":0,\"full\":256,\"offsets\":0,\
             \"zeros\":3,\"retransmits\":1,\"wire_bytes\":1052736,\"priority\":false}"
        );
        assert!(lines.next().unwrap().contains("\"rate_kbps\":1536.5"));
    }

    #[test]
    fn sched_decision_renders_missing_dest_as_minus_one() {
        let mut t = Tracer::with_capacity(4);
        t.record(
            SimTime::from_secs(1),
            TraceEvent::SchedDecision {
                vm: 3,
                src: 0,
                dest: 2,
                action: SchedAction::Start,
            },
        );
        t.record(
            SimTime::from_secs(2),
            TraceEvent::SchedDecision {
                vm: 4,
                src: 1,
                dest: u32::MAX,
                action: SchedAction::Queue,
            },
        );
        let out = t.to_jsonl();
        let mut lines = out.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":1000000000,\"ev\":\"sched_decision\",\"vm\":3,\"src\":0,\"dest\":2,\
             \"action\":\"start\"}"
        );
        assert!(lines
            .next()
            .unwrap()
            .contains("\"dest\":-1,\"action\":\"queue\""));
    }

    #[test]
    fn wss_estimate_renders_stably() {
        let mut t = Tracer::with_capacity(2);
        t.record(
            SimTime::from_secs(4),
            TraceEvent::WssEstimate {
                vm: 2,
                estimator: "pml",
                est_bytes: 33_554_432,
                truth_bytes: 34_603_008,
                reservation: 41_943_040,
                overflowed: true,
            },
        );
        assert_eq!(
            t.to_jsonl().lines().next().unwrap(),
            "{\"t_ns\":4000000000,\"ev\":\"wss_estimate\",\"vm\":2,\"estimator\":\"pml\",\
             \"est_bytes\":33554432,\"truth_bytes\":34603008,\"reservation\":41943040,\
             \"overflowed\":true}"
        );
    }

    #[test]
    fn sched_defer_renders_stably() {
        let mut t = Tracer::with_capacity(2);
        t.record(
            SimTime::from_secs(3),
            TraceEvent::SchedDefer {
                vm: 5,
                src: 1,
                fire_t_ns: 45_000_000_000,
                clamped: false,
            },
        );
        assert_eq!(
            t.to_jsonl().lines().next().unwrap(),
            "{\"t_ns\":3000000000,\"ev\":\"sched_defer\",\"vm\":5,\"src\":1,\
             \"fire_t_ns\":45000000000,\"clamped\":false}"
        );
    }

    #[test]
    fn pool_events_render_stably() {
        let mut t = Tracer::with_capacity(4);
        t.record(
            SimTime::from_secs(1),
            TraceEvent::PoolLease {
                server: 2,
                lease_pages: 4096,
                shrink: true,
            },
        );
        t.record(
            SimTime::from_secs(2),
            TraceEvent::PoolReclaim {
                server: 2,
                relocated: 64,
                demoted: 0,
            },
        );
        t.record(
            SimTime::from_secs(3),
            TraceEvent::PoolRebalance {
                from: 1,
                to: 0,
                pages: 32,
            },
        );
        let out = t.to_jsonl();
        let mut lines = out.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":1000000000,\"ev\":\"pool_lease\",\"server\":2,\"lease_pages\":4096,\
             \"shrink\":true}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":2000000000,\"ev\":\"pool_reclaim\",\"server\":2,\"relocated\":64,\
             \"demoted\":0}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":3000000000,\"ev\":\"pool_rebalance\",\"from\":1,\"to\":0,\"pages\":32}"
        );
    }

    #[test]
    fn clone_events_render_stably() {
        let mut t = Tracer::with_capacity(8);
        t.record(
            SimTime::from_secs(1),
            TraceEvent::NsFork {
                master: 0,
                clone: 7,
            },
        );
        t.record(
            SimTime::from_secs(2),
            TraceEvent::CowBreak { ns: 7, slot: 42 },
        );
        t.record(
            SimTime::from_secs(3),
            TraceEvent::CloneSpawn {
                clone: 0,
                vm: 3,
                host: 2,
            },
        );
        t.record(
            SimTime::from_secs(4),
            TraceEvent::CloneReady { clone: 0, vm: 3 },
        );
        t.record(
            SimTime::from_secs(5),
            TraceEvent::CloneTeardown { clone: 0, vm: 3 },
        );
        let out = t.to_jsonl();
        let mut lines = out.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":1000000000,\"ev\":\"ns_fork\",\"master\":0,\"clone\":7}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":2000000000,\"ev\":\"cow_break\",\"ns\":7,\"slot\":42}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":3000000000,\"ev\":\"clone_spawn\",\"clone\":0,\"vm\":3,\"host\":2}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":4000000000,\"ev\":\"clone_ready\",\"clone\":0,\"vm\":3}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_ns\":5000000000,\"ev\":\"clone_teardown\",\"clone\":0,\"vm\":3}"
        );
        assert_eq!(t.count_named("cow_break"), 1);
    }

    #[test]
    fn count_named_filters() {
        let mut t = Tracer::with_capacity(8);
        t.record(SimTime::ZERO, TraceEvent::MigSuspend { mig: 0 });
        t.record(SimTime::ZERO, TraceEvent::MigResume { mig: 0 });
        t.record(SimTime::ZERO, TraceEvent::MigSuspend { mig: 1 });
        assert_eq!(t.count_named("mig_suspend"), 2);
        assert_eq!(t.count_named("mig_resume"), 1);
        assert_eq!(t.count_named("chunk_sent"), 0);
    }
}
