//! # agile-trace
//!
//! Zero-overhead-when-disabled observability for the Agile migration
//! simulator.
//!
//! Three pieces, all keyed on *simulated* time so output is a pure
//! function of the seed:
//!
//! * **Event tracing** ([`Tracer`], [`TraceEvent`]) — a ring-buffer sink
//!   for migration phase transitions, chunk/demand traffic, destination
//!   fault routing, WSS controller decisions, VMD request lifecycles, and
//!   chaos fault windows. Disabled tracers hold no buffer and every
//!   [`Tracer::record`] call is a single predictable branch, so the DES
//!   hot loop pays nothing when tracing is off. Export is JSONL with
//!   integer-nanosecond timestamps ([`Tracer::to_jsonl`]).
//! * **Metrics registry** ([`MetricsRegistry`]) — typed counters, gauges,
//!   and fixed-bucket simulated-time histograms, rendered in registration
//!   order so the JSON export is byte-deterministic per seed.
//! * **Phase timelines** ([`PhaseTimeline`], [`PhasePoint`]) — the
//!   per-migration decomposition the paper's evaluation reasons about
//!   (live rounds, stop-and-copy, handoff, push), with cumulative counter
//!   snapshots at every phase entry. This is what `TRACE_<scenario>.json`
//!   contains and what the conformance tests assert against.
//!
//! ```
//! use agile_sim_core::SimTime;
//! use agile_trace::{TraceEvent, Tracer};
//!
//! let mut t = Tracer::with_capacity(16);
//! t.record(
//!     SimTime::from_millis(5),
//!     TraceEvent::MigSuspend { mig: 0 },
//! );
//! assert_eq!(t.len(), 1);
//! assert!(t.to_jsonl().contains("\"mig_suspend\""));
//!
//! let off = Tracer::disabled();
//! assert!(!off.is_enabled()); // records are no-ops, no buffer exists
//! ```

pub mod event;
pub mod registry;
pub mod timeline;

pub use event::{ChaosKind, FaultPath, SchedAction, TraceEvent, Tracer, VmdKind};
pub use registry::MetricsRegistry;
pub use timeline::{PhaseKind, PhasePoint, PhaseTimeline};
