//! Per-migration phase timelines — the `TRACE_<scenario>.json` payload.
//!
//! A migration decomposes into the phases the paper's evaluation reasons
//! about: live pre-copy rounds, stop-and-copy, the CPU handoff, and the
//! post-resume push/demand phase. The source session records a
//! [`PhasePoint`] snapshot of its cumulative counters every time it
//! *enters* a phase; the cluster report layer folds those points together
//! with end-of-run totals and destination-side counters into a
//! [`PhaseTimeline`].
//!
//! All timestamps render as integer nanoseconds and all fields render in
//! a fixed order, so `to_json()` is byte-deterministic per seed.

use agile_sim_core::SimTime;

/// A migration phase, as entered by the source state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseKind {
    /// A live pre-copy round (VM executing at the source).
    LiveRound,
    /// Pre-copy stop-and-copy: VM suspended, draining the dirty set.
    StopAndCopy,
    /// Handoff queued; awaiting delivery at the destination.
    AwaitHandoff,
    /// Post-resume push + demand paging (post-copy and Agile).
    Push,
    /// Everything queued; source releasable once the pipes drain.
    Done,
    /// The attempt was aborted (connection drop); a retry restarts it.
    Aborted,
}

impl PhaseKind {
    /// Stable lower-snake name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::LiveRound => "live_round",
            PhaseKind::StopAndCopy => "stop_and_copy",
            PhaseKind::AwaitHandoff => "await_handoff",
            PhaseKind::Push => "push",
            PhaseKind::Done => "done",
            PhaseKind::Aborted => "aborted",
        }
    }
}

/// Snapshot of the source session's cumulative counters at the instant a
/// phase was entered.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PhasePoint {
    /// When the phase was entered.
    pub at: SimTime,
    /// The phase entered.
    pub phase: PhaseKind,
    /// Live-round number (0 outside live rounds).
    pub round: u32,
    /// Cumulative bytes on the migration connection.
    pub migration_bytes: u64,
    /// Cumulative full pages sent.
    pub pages_sent_full: u64,
    /// Cumulative SWAPPED-flag offset markers sent (Agile).
    pub pages_sent_as_offsets: u64,
    /// Cumulative zero-page markers sent.
    pub pages_sent_zero: u64,
    /// Cumulative retransmissions of already-shipped pages.
    pub pages_retransmitted: u64,
    /// Cumulative pages the Migration Manager swapped in to transfer.
    pub pages_swapped_in_for_transfer: u64,
    /// Cumulative pages demand-served from the source.
    pub pages_demand_from_source: u64,
}

impl PhasePoint {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"phase\":\"{}\",\"round\":{},\"migration_bytes\":{},\
             \"pages_sent_full\":{},\"pages_sent_as_offsets\":{},\"pages_sent_zero\":{},\
             \"pages_retransmitted\":{},\"pages_swapped_in_for_transfer\":{},\
             \"pages_demand_from_source\":{}}}",
            self.at.as_nanos(),
            self.phase.name(),
            self.round,
            self.migration_bytes,
            self.pages_sent_full,
            self.pages_sent_as_offsets,
            self.pages_sent_zero,
            self.pages_retransmitted,
            self.pages_swapped_in_for_transfer,
            self.pages_demand_from_source,
        );
    }
}

/// The complete per-migration phase decomposition of one run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PhaseTimeline {
    /// Scenario label (e.g. "single_vm").
    pub scenario: String,
    /// Technique name ("pre-copy", "post-copy", "agile").
    pub technique: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Live pre-copy rounds completed.
    pub rounds: u32,
    /// Connection-drop retries the migration survived.
    pub retries: u32,
    /// Suspension → resumption, in nanoseconds (`None` if never resumed).
    pub downtime_ns: Option<u64>,
    /// Start → source released, in nanoseconds (`None` while in flight).
    pub total_ns: Option<u64>,
    /// Start → suspension, in nanoseconds (`None` if never suspended).
    pub live_ns: Option<u64>,
    /// Pages in the post-suspension pass (stop-and-copy set for pre-copy;
    /// push set for post-copy/Agile).
    pub push_set_pages: u64,
    /// Final bytes on the migration connection.
    pub migration_bytes: u64,
    /// Final full pages sent.
    pub pages_sent_full: u64,
    /// Final SWAPPED-flag offset markers sent.
    pub pages_sent_as_offsets: u64,
    /// Final zero-page markers sent.
    pub pages_sent_zero: u64,
    /// Final retransmission count.
    pub pages_retransmitted: u64,
    /// Final Migration-Manager swap-in count.
    pub pages_swapped_in_for_transfer: u64,
    /// Final demand-from-source count.
    pub pages_demand_from_source: u64,
    /// Destination: pages installed from the bulk/priority streams.
    pub dest_pages_installed_stream: u64,
    /// Destination: post-resume faults served by the per-VM swap device.
    pub dest_pages_faulted_from_swap: u64,
    /// Destination: post-resume faults demand-paged from the source.
    pub dest_pages_faulted_from_source: u64,
    /// Destination: duplicate arrivals ignored.
    pub dest_duplicate_pages_ignored: u64,
    /// Destination: stale stream pages discarded at resume.
    pub dest_pages_discarded_at_resume: u64,
    /// Phase-entry snapshots, in order.
    pub phases: Vec<PhasePoint>,
}

impl PhaseTimeline {
    /// The phase points of one kind, in order.
    pub fn phases_of(&self, kind: PhaseKind) -> impl Iterator<Item = &PhasePoint> {
        self.phases.iter().filter(move |p| p.phase == kind)
    }

    /// Number of live rounds recorded in the phase log.
    pub fn live_rounds_logged(&self) -> usize {
        self.phases_of(PhaseKind::LiveRound).count()
    }

    /// Render as a deterministic JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        fn opt(v: Option<u64>) -> String {
            match v {
                Some(x) => x.to_string(),
                None => "null".to_string(),
            }
        }
        let mut out = String::with_capacity(1024 + self.phases.len() * 200);
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"technique\": \"{}\",", self.technique);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"retries\": {},", self.retries);
        let _ = writeln!(out, "  \"downtime_ns\": {},", opt(self.downtime_ns));
        let _ = writeln!(out, "  \"total_ns\": {},", opt(self.total_ns));
        let _ = writeln!(out, "  \"live_ns\": {},", opt(self.live_ns));
        let _ = writeln!(out, "  \"push_set_pages\": {},", self.push_set_pages);
        let _ = writeln!(out, "  \"migration_bytes\": {},", self.migration_bytes);
        let _ = writeln!(out, "  \"pages_sent_full\": {},", self.pages_sent_full);
        let _ = writeln!(
            out,
            "  \"pages_sent_as_offsets\": {},",
            self.pages_sent_as_offsets
        );
        let _ = writeln!(out, "  \"pages_sent_zero\": {},", self.pages_sent_zero);
        let _ = writeln!(
            out,
            "  \"pages_retransmitted\": {},",
            self.pages_retransmitted
        );
        let _ = writeln!(
            out,
            "  \"pages_swapped_in_for_transfer\": {},",
            self.pages_swapped_in_for_transfer
        );
        let _ = writeln!(
            out,
            "  \"pages_demand_from_source\": {},",
            self.pages_demand_from_source
        );
        let _ = writeln!(
            out,
            "  \"dest_pages_installed_stream\": {},",
            self.dest_pages_installed_stream
        );
        let _ = writeln!(
            out,
            "  \"dest_pages_faulted_from_swap\": {},",
            self.dest_pages_faulted_from_swap
        );
        let _ = writeln!(
            out,
            "  \"dest_pages_faulted_from_source\": {},",
            self.dest_pages_faulted_from_source
        );
        let _ = writeln!(
            out,
            "  \"dest_duplicate_pages_ignored\": {},",
            self.dest_duplicate_pages_ignored
        );
        let _ = writeln!(
            out,
            "  \"dest_pages_discarded_at_resume\": {},",
            self.dest_pages_discarded_at_resume
        );
        let _ = writeln!(out, "  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str("    ");
            p.write_json(&mut out);
            if i + 1 != self.phases.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(at_ns: u64, phase: PhaseKind, round: u32) -> PhasePoint {
        PhasePoint {
            at: SimTime::from_nanos(at_ns),
            phase,
            round,
            migration_bytes: 0,
            pages_sent_full: 0,
            pages_sent_as_offsets: 0,
            pages_sent_zero: 0,
            pages_retransmitted: 0,
            pages_swapped_in_for_transfer: 0,
            pages_demand_from_source: 0,
        }
    }

    #[test]
    fn phase_filters() {
        let tl = PhaseTimeline {
            technique: "agile".into(),
            phases: vec![
                point(0, PhaseKind::LiveRound, 1),
                point(10, PhaseKind::AwaitHandoff, 0),
                point(20, PhaseKind::Push, 0),
                point(30, PhaseKind::Done, 0),
            ],
            ..PhaseTimeline::default()
        };
        assert_eq!(tl.live_rounds_logged(), 1);
        assert_eq!(tl.phases_of(PhaseKind::Push).count(), 1);
        assert_eq!(tl.phases_of(PhaseKind::StopAndCopy).count(), 0);
    }

    #[test]
    fn json_is_deterministic_and_well_shaped() {
        let build = || {
            let tl = PhaseTimeline {
                scenario: "single_vm".into(),
                technique: "pre-copy".into(),
                seed: 42,
                rounds: 2,
                downtime_ns: Some(200_000_000),
                total_ns: Some(30_000_000_000),
                live_ns: Some(29_800_000_000),
                phases: vec![
                    point(0, PhaseKind::LiveRound, 1),
                    point(5, PhaseKind::LiveRound, 2),
                ],
                ..PhaseTimeline::default()
            };
            tl.to_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"downtime_ns\": 200000000"), "{a}");
        assert!(a.contains("\"phase\":\"live_round\",\"round\":2"), "{a}");
        assert!(a.contains("\"total_ns\": 30000000000"), "{a}");
    }

    #[test]
    fn json_null_for_inflight() {
        let tl = PhaseTimeline::default();
        let j = tl.to_json();
        assert!(j.contains("\"downtime_ns\": null"), "{j}");
        assert!(j.contains("\"phases\": ["), "{j}");
    }
}
