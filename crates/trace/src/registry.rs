//! Typed metrics registry with byte-deterministic export.
//!
//! Counters, gauges, and fixed-bucket simulated-time histograms, kept in
//! registration order. Rendering walks that order, histograms use
//! [`FixedHistogram`]'s data-independent bucket layout, and floats print
//! in shortest-round-trip form — so the JSON export of a seeded run is
//! byte-identical across invocations.

use agile_sim_core::{FixedHistogram, SimDuration};

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    // Boxed: a histogram is ~50x the size of the other variants.
    Histogram(Box<FixedHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics, rendered in registration order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn upsert(&mut self, name: &str, fresh: Metric) -> &mut Metric {
        // Linear scan: registries hold tens of entries and are written at
        // report time, not in the event hot loop.
        match self.entries.iter().position(|(n, _)| n == name) {
            Some(i) => {
                let m = &mut self.entries[i].1;
                assert_eq!(
                    m.kind(),
                    fresh.kind(),
                    "metric {name:?} re-registered with a different type"
                );
                m
            }
            None => {
                self.entries.push((name.to_string(), fresh));
                &mut self.entries.last_mut().expect("just pushed").1
            }
        }
    }

    /// Add `delta` to counter `name` (registering it at 0 first if new).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.upsert(name, Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            _ => unreachable!("kind checked in upsert"),
        }
    }

    /// Set counter `name` to `value`.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.upsert(name, Metric::Counter(0)) {
            Metric::Counter(v) => *v = value,
            _ => unreachable!("kind checked in upsert"),
        }
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.upsert(name, Metric::Gauge(0.0)) {
            Metric::Gauge(v) => *v = value,
            _ => unreachable!("kind checked in upsert"),
        }
    }

    /// Record a duration observation into histogram `name`.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        match self.upsert(name, Metric::Histogram(Box::new(FixedHistogram::new()))) {
            Metric::Histogram(h) => h.observe(d),
            _ => unreachable!("kind checked in upsert"),
        }
    }

    /// The value of counter `name`, if registered as a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Counter(v) if n == name => Some(*v),
            _ => None,
        })
    }

    /// The value of gauge `name`, if registered as a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Gauge(v) if n == name => Some(*v),
            _ => None,
        })
    }

    /// The histogram `name`, if registered as one.
    pub fn histogram(&self, name: &str) -> Option<&FixedHistogram> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Histogram(h) if n == name => Some(h.as_ref()),
            _ => None,
        })
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as one JSON object, metrics in registration order.
    ///
    /// Histograms list only their non-empty buckets as
    /// `[bucket_index, count]` pairs (the layout itself is fixed, see
    /// [`FixedHistogram`]), keeping the export compact and deterministic.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        for (i, (name, m)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            match m {
                Metric::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "  \"{name}\":{{\"type\":\"counter\",\"value\":{v}}}{sep}"
                    );
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "  \"{name}\":{{\"type\":\"gauge\",\"value\":{v:?}}}{sep}"
                    );
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "  \"{name}\":{{\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\
                         \"max_ns\":{},\"buckets\":[",
                        h.count(),
                        h.sum_ns(),
                        h.max_ns()
                    );
                    let mut first = true;
                    for (b, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "[{b},{c}]");
                    }
                    let _ = writeln!(out, "]}}{sep}");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_is_render_order() {
        let mut r = MetricsRegistry::new();
        r.add("zebra", 1);
        r.add("aardvark", 2);
        r.set_gauge("middle", 0.5);
        let json = r.to_json();
        let z = json.find("zebra").unwrap();
        let a = json.find("aardvark").unwrap();
        let m = json.find("middle").unwrap();
        assert!(z < a && a < m, "registration order preserved: {json}");
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.add("pages", 3);
        r.add("pages", 4);
        assert_eq!(r.counter("pages"), Some(7));
        r.set_counter("pages", 1);
        assert_eq!(r.counter("pages"), Some(1));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.gauge("pages"), None, "kind-checked lookup");
    }

    #[test]
    fn histogram_renders_sparse_buckets() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", SimDuration::from_nanos(100));
        r.observe("lat", SimDuration::from_nanos(100));
        r.observe("lat", SimDuration::from_millis(1));
        let json = r.to_json();
        assert!(json.contains("\"count\":3"), "{json}");
        assert!(json.contains("[7,2]"), "two obs in [64,128) ns: {json}");
        assert_eq!(r.histogram("lat").unwrap().count(), 3);
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.add("a", 1);
            r.set_gauge("b", 1.0 / 3.0);
            r.observe("c", SimDuration::from_micros(7));
            r.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_conflict_panics() {
        let mut r = MetricsRegistry::new();
        r.add("x", 1);
        r.set_gauge("x", 2.0);
    }
}
