//! Swap backends.
//!
//! A VM's cold pages live on a swap device. The paper contrasts two kinds:
//!
//! * a **system-wide SSD partition** shared by every VM on the host (what
//!   the pre-copy/post-copy baselines use) — [`SsdSwap`];
//! * a **per-VM, portable, network-backed namespace** on the VMD (what
//!   Agile migration uses) — implemented in the `agile-vmd` crate against
//!   the same [`SwapBackend`] trait.
//!
//! Local devices know their completion time at submission (FIFO model), so
//! they answer [`SwapIssue::CompleteAt`]. Network-backed devices cannot —
//! their latency depends on shared-link contention — so they answer
//! [`SwapIssue::Pending`] and the cluster executor delivers the completion
//! when the response message arrives.

use std::cell::RefCell;
use std::rc::Rc;

use agile_sim_core::{BlockDevice, IoCounters, IoKind, SimTime};

/// How a submitted swap I/O will complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwapIssue {
    /// The I/O finishes at this instant (local FIFO device).
    CompleteAt(SimTime),
    /// Completion is asynchronous; the backend will surface the request id
    /// through its own completion path (network delivery).
    Pending,
}

/// A device that stores swapped-out pages, addressed by slot.
pub trait SwapBackend {
    /// Issue a read of `slot` (a swap-in). `req` is an opaque request id
    /// echoed through asynchronous completion paths.
    fn read(&mut self, now: SimTime, slot: u32, req: u64) -> SwapIssue;

    /// Issue a write of `slot` (a swap-out). `version` is the content token
    /// being stored (the simulation tracks page identity, not bytes).
    fn write(&mut self, now: SimTime, slot: u32, version: u32, req: u64) -> SwapIssue;

    /// I/O counters as observed for *this* user of the device (per-VM view;
    /// the substrate for per-VM iostat sampling).
    fn counters(&self) -> IoCounters;

    /// Page size this backend stores.
    fn page_size(&self) -> u64;
}

/// A slice of a (possibly shared) local SSD/HDD used as swap.
///
/// Several VMs may hold handles to the same underlying [`BlockDevice`] —
/// exactly the shared 30 GB SSD partition of the paper's baseline setup —
/// so queueing interference between VMs, and between a VM and the Migration
/// Manager swapping pages in for transfer, arises naturally.
#[derive(Clone, Debug)]
pub struct SsdSwap {
    dev: Rc<RefCell<BlockDevice>>,
    page_size: u64,
    counters: IoCounters,
    /// Swap-out writes accumulated but not yet charged to the device
    /// (Linux writes anonymous pages back asynchronously in clusters).
    pending_writes: u64,
}

/// Swap-out writes are charged to the device in clusters of this many
/// pages (the kernel's swap writeback batching).
const WRITE_CLUSTER_PAGES: u64 = 32;

impl SsdSwap {
    /// Create a swap area on `dev` with the given page size.
    pub fn new(dev: Rc<RefCell<BlockDevice>>, page_size: u64) -> Self {
        SsdSwap {
            dev,
            page_size,
            counters: IoCounters::default(),
            pending_writes: 0,
        }
    }

    /// Handle to the underlying device (e.g. for whole-device stats).
    pub fn device(&self) -> &Rc<RefCell<BlockDevice>> {
        &self.dev
    }

    /// Read `pages` *slot-consecutive* pages as one streaming run (one
    /// command overhead). Returns the completion time of the whole run.
    pub fn read_run(&mut self, now: SimTime, pages: u64) -> SimTime {
        let done = self
            .dev
            .borrow_mut()
            .submit_run(now, IoKind::Read, pages, self.page_size);
        self.counters.read_ops += pages;
        self.counters.read_bytes += pages * self.page_size;
        done
    }

    /// Write `pages` slot-consecutive pages as one streaming run.
    pub fn write_run(&mut self, now: SimTime, pages: u64) -> SimTime {
        let done = self
            .dev
            .borrow_mut()
            .submit_run(now, IoKind::Write, pages, self.page_size);
        self.counters.write_ops += pages;
        self.counters.write_bytes += pages * self.page_size;
        done
    }
}

impl SwapBackend for SsdSwap {
    fn read(&mut self, now: SimTime, _slot: u32, _req: u64) -> SwapIssue {
        let done = self
            .dev
            .borrow_mut()
            .submit(now, IoKind::Read, self.page_size);
        self.counters.read_ops += 1;
        self.counters.read_bytes += self.page_size;
        SwapIssue::CompleteAt(done)
    }

    fn write(&mut self, now: SimTime, _slot: u32, _version: u32, _req: u64) -> SwapIssue {
        // Swap-out is asynchronous in Linux: the page is queued for
        // writeback and the device is charged one clustered streaming
        // write per WRITE_CLUSTER_PAGES pages.
        self.counters.write_ops += 1;
        self.counters.write_bytes += self.page_size;
        self.pending_writes += 1;
        if self.pending_writes >= WRITE_CLUSTER_PAGES {
            let pages = std::mem::take(&mut self.pending_writes);
            let done = self
                .dev
                .borrow_mut()
                .submit_run(now, IoKind::Write, pages, self.page_size);
            return SwapIssue::CompleteAt(done);
        }
        SwapIssue::CompleteAt(now)
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn page_size(&self) -> u64 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim_core::BlockDeviceSpec;

    fn ssd_pair() -> (SsdSwap, SsdSwap) {
        let dev = Rc::new(RefCell::new(BlockDevice::new(BlockDeviceSpec::sata_ssd())));
        (SsdSwap::new(Rc::clone(&dev), 4096), SsdSwap::new(dev, 4096))
    }

    #[test]
    fn read_completes_at_device_time() {
        let (mut a, _) = ssd_pair();
        match a.read(SimTime::ZERO, 0, 1) {
            SwapIssue::CompleteAt(t) => assert!(t > SimTime::ZERO),
            SwapIssue::Pending => panic!("local device must be synchronous"),
        }
    }

    #[test]
    fn sharers_queue_behind_each_other() {
        let (mut a, mut b) = ssd_pair();
        let ta = match a.read(SimTime::ZERO, 0, 1) {
            SwapIssue::CompleteAt(t) => t,
            _ => unreachable!(),
        };
        let tb = match b.read(SimTime::ZERO, 1, 2) {
            SwapIssue::CompleteAt(t) => t,
            _ => unreachable!(),
        };
        assert!(tb > ta, "second VM's I/O queues behind the first's");
    }

    #[test]
    fn per_user_counters_are_separate() {
        let (mut a, mut b) = ssd_pair();
        a.read(SimTime::ZERO, 0, 1);
        a.write(SimTime::ZERO, 0, 1, 2);
        b.read(SimTime::ZERO, 1, 3);
        assert_eq!(a.counters().read_ops, 1);
        assert_eq!(a.counters().write_ops, 1);
        assert_eq!(b.counters().read_ops, 1);
        assert_eq!(b.counters().write_ops, 0);
        // The shared device saw the reads; writes are buffered for the
        // asynchronous writeback cluster.
        let dev_counters = a.device().borrow().counters();
        assert_eq!(dev_counters.read_ops, 2);
    }

    #[test]
    fn writes_cluster_on_the_device() {
        let (mut a, _) = ssd_pair();
        for slot in 0..WRITE_CLUSTER_PAGES {
            a.write(SimTime::ZERO, slot as u32, 1, slot);
        }
        let dev = a.device().borrow().counters();
        assert_eq!(dev.write_ops, 1, "one clustered run for the batch");
        assert_eq!(dev.write_bytes, WRITE_CLUSTER_PAGES * 4096);
        // The per-VM iostat view still counts every logical write.
        assert_eq!(a.counters().write_ops, WRITE_CLUSTER_PAGES);
        // A clustered streaming write is far cheaper than per-page ops.
        let run_nanos = dev.busy_nanos;
        let per_op = BlockDevice::new(BlockDeviceSpec::sata_ssd())
            .spec()
            .service_time(IoKind::Write, 4096)
            .as_nanos()
            * WRITE_CLUSTER_PAGES;
        assert!(run_nanos * 4 < per_op, "{run_nanos} !<< {per_op}");
    }
}
