//! Swap-slot allocator for one per-VM swap namespace.
//!
//! A namespace is a flat array of page-sized slots. Allocation prefers the
//! lowest free slot, so slot numbers stay dense and the VMD can report used
//! capacity as `high_water - free`. The destination side of a migration
//! inherits slot assignments made by the source (the per-VM swap device is
//! portable), which it records with [`SlotAllocator::note_external`].

use std::collections::BTreeSet;

/// Sentinel for "no slot".
pub const NO_SLOT: u32 = u32::MAX;

/// Allocates page slots within a swap namespace.
#[derive(Clone, Debug, Default)]
pub struct SlotAllocator {
    next_fresh: u32,
    free: BTreeSet<u32>,
    capacity: Option<u32>,
}

impl SlotAllocator {
    /// Unbounded allocator (VMD namespaces grow on demand; memory is only
    /// allocated at the intermediate hosts when a page is written).
    pub fn unbounded() -> Self {
        SlotAllocator::default()
    }

    /// Allocator bounded to `capacity` slots (a fixed swap partition).
    pub fn bounded(capacity: u32) -> Self {
        SlotAllocator {
            capacity: Some(capacity),
            ..SlotAllocator::default()
        }
    }

    /// Allocate the lowest free slot, or `None` if the namespace is full.
    pub fn alloc(&mut self) -> Option<u32> {
        if let Some(&s) = self.free.iter().next() {
            self.free.remove(&s);
            return Some(s);
        }
        if let Some(cap) = self.capacity {
            if self.next_fresh >= cap {
                return None;
            }
        }
        debug_assert!(self.next_fresh != NO_SLOT, "slot space exhausted");
        let s = self.next_fresh;
        self.next_fresh += 1;
        Some(s)
    }

    /// Return a slot to the free list.
    pub fn free(&mut self, slot: u32) {
        debug_assert!(slot < self.next_fresh, "freeing never-allocated slot");
        let inserted = self.free.insert(slot);
        debug_assert!(inserted, "double free of slot {slot}");
    }

    /// Record that `slot` is in use although it was allocated by another
    /// allocator instance (the source host's, before migration). Idempotent
    /// per slot.
    pub fn note_external(&mut self, slot: u32) {
        debug_assert!(slot != NO_SLOT);
        if slot >= self.next_fresh {
            for s in self.next_fresh..slot {
                self.free.insert(s);
            }
            self.next_fresh = slot + 1;
        } else {
            self.free.remove(&slot);
        }
    }

    /// Slots currently allocated.
    pub fn live(&self) -> u32 {
        self.next_fresh - self.free.len() as u32
    }

    /// Highest slot index ever handed out plus one (namespace extent).
    pub fn high_water(&self) -> u32 {
        self.next_fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_dense_then_reuses_lowest() {
        let mut a = SlotAllocator::unbounded();
        assert_eq!(a.alloc(), Some(0));
        assert_eq!(a.alloc(), Some(1));
        assert_eq!(a.alloc(), Some(2));
        a.free(1);
        a.free(0);
        assert_eq!(a.alloc(), Some(0), "lowest freed slot reused first");
        assert_eq!(a.alloc(), Some(1));
        assert_eq!(a.alloc(), Some(3));
        assert_eq!(a.live(), 4);
        assert_eq!(a.high_water(), 4);
    }

    #[test]
    fn bounded_allocator_fills_up() {
        let mut a = SlotAllocator::bounded(2);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert_eq!(a.alloc(), None);
        a.free(0);
        assert_eq!(a.alloc(), Some(0));
        assert_eq!(a.alloc(), None);
    }

    #[test]
    fn live_tracks_balance() {
        let mut a = SlotAllocator::unbounded();
        let s1 = a.alloc().unwrap();
        let _s2 = a.alloc().unwrap();
        assert_eq!(a.live(), 2);
        a.free(s1);
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn note_external_above_high_water() {
        let mut a = SlotAllocator::unbounded();
        a.note_external(5);
        assert_eq!(a.live(), 1);
        assert_eq!(a.high_water(), 6);
        // Slots 0..5 are free; the allocator hands them out before fresh.
        assert_eq!(a.alloc(), Some(0));
        a.note_external(2);
        assert_eq!(a.alloc(), Some(1));
        assert_eq!(a.alloc(), Some(3));
        assert_eq!(a.live(), 5);
    }

    #[test]
    fn note_external_then_free_roundtrip() {
        let mut a = SlotAllocator::unbounded();
        a.note_external(3);
        a.free(3);
        assert_eq!(a.live(), 0);
        // 0,1,2,3 all free now.
        assert_eq!(a.alloc(), Some(0));
    }
}
