//! Host physical-memory accounting.
//!
//! Tracks how much of a host's DRAM is spoken for: the host OS overhead
//! (the paper measures ≈200 MB) plus the sum of VM reservations. The
//! watermark-based migration trigger (§III-B) asks this ledger whether the
//! aggregate working set still fits.

/// Ledger of one host's physical memory.
#[derive(Clone, Debug)]
pub struct HostMemory {
    total_bytes: u64,
    os_overhead_bytes: u64,
    reservations: Vec<(u64, u64)>, // (vm key, bytes)
}

impl HostMemory {
    /// Create a ledger for a host with `total_bytes` DRAM, of which
    /// `os_overhead_bytes` is consumed by the host OS itself.
    pub fn new(total_bytes: u64, os_overhead_bytes: u64) -> Self {
        assert!(os_overhead_bytes <= total_bytes);
        HostMemory {
            total_bytes,
            os_overhead_bytes,
            reservations: Vec::new(),
        }
    }

    /// Total DRAM.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Memory usable by VMs (total minus host OS).
    pub fn available_for_vms(&self) -> u64 {
        self.total_bytes - self.os_overhead_bytes
    }

    /// Register or update a VM's reservation. Oversubscription is allowed —
    /// that is precisely the memory-pressure condition the paper studies —
    /// but [`HostMemory::pressure`] will exceed 1.
    pub fn set_reservation(&mut self, vm: u64, bytes: u64) {
        if let Some(r) = self.reservations.iter_mut().find(|(k, _)| *k == vm) {
            r.1 = bytes;
        } else {
            self.reservations.push((vm, bytes));
        }
    }

    /// Remove a VM's reservation (it migrated away or terminated).
    pub fn remove_reservation(&mut self, vm: u64) -> bool {
        let before = self.reservations.len();
        self.reservations.retain(|(k, _)| *k != vm);
        self.reservations.len() != before
    }

    /// A VM's current reservation, if registered.
    pub fn reservation(&self, vm: u64) -> Option<u64> {
        self.reservations
            .iter()
            .find(|(k, _)| *k == vm)
            .map(|(_, b)| *b)
    }

    /// Sum of all VM reservations.
    pub fn reserved_bytes(&self) -> u64 {
        self.reservations.iter().map(|(_, b)| b).sum()
    }

    /// Unreserved memory still available to grow reservations into.
    pub fn free_bytes(&self) -> u64 {
        self.available_for_vms()
            .saturating_sub(self.reserved_bytes())
    }

    /// Reserved / available ratio. Above 1.0 the host is oversubscribed and
    /// per-cgroup limits will force swapping.
    pub fn pressure(&self) -> f64 {
        if self.available_for_vms() == 0 {
            return f64::INFINITY;
        }
        self.reserved_bytes() as f64 / self.available_for_vms() as f64
    }

    /// Registered VM keys (insertion order).
    pub fn vms(&self) -> impl Iterator<Item = u64> + '_ {
        self.reservations.iter().map(|(k, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim_core::GIB;

    #[test]
    fn ledger_basics() {
        let mut h = HostMemory::new(23 * GIB, 200 * 1024 * 1024);
        assert_eq!(h.total_bytes(), 23 * GIB);
        h.set_reservation(1, 5 * GIB);
        h.set_reservation(2, 5 * GIB);
        assert_eq!(h.reserved_bytes(), 10 * GIB);
        assert_eq!(h.reservation(1), Some(5 * GIB));
        assert!(h.pressure() < 1.0);
        assert_eq!(h.free_bytes(), h.available_for_vms() - 10 * GIB);
    }

    #[test]
    fn update_replaces_not_duplicates() {
        let mut h = HostMemory::new(8 * GIB, 0);
        h.set_reservation(1, GIB);
        h.set_reservation(1, 2 * GIB);
        assert_eq!(h.reserved_bytes(), 2 * GIB);
        assert_eq!(h.vms().count(), 1);
    }

    #[test]
    fn oversubscription_shows_pressure() {
        let mut h = HostMemory::new(6 * GIB, GIB / 2);
        h.set_reservation(1, 12 * GIB);
        assert!(h.pressure() > 2.0);
        assert_eq!(h.free_bytes(), 0);
    }

    #[test]
    fn removal() {
        let mut h = HostMemory::new(8 * GIB, 0);
        h.set_reservation(1, GIB);
        assert!(h.remove_reservation(1));
        assert!(!h.remove_reservation(1));
        assert_eq!(h.reserved_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn overhead_cannot_exceed_total() {
        let _ = HostMemory::new(GIB, 2 * GIB);
    }
}
