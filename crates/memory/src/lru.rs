//! Intrusive doubly-linked LRU list over `u32` page indices.
//!
//! The reclaim machinery keeps every resident page on exactly one of two
//! lists (active / inactive), so the links are stored out-of-band in a
//! shared [`LruLinks`] arena — one `prev`/`next` pair per page — and each
//! [`LruList`] is just a head/tail/len view over that arena. All operations
//! are O(1) and allocation-free, which matters: a 10 GB VM has 2.6 M pages
//! and reclaim churns the lists continuously under memory pressure.

/// Sentinel meaning "no page".
pub const NIL: u32 = u32::MAX;

/// Shared link arena: `prev[i]`/`next[i]` for page `i`.
#[derive(Clone, Debug)]
pub struct LruLinks {
    prev: Vec<u32>,
    next: Vec<u32>,
}

impl LruLinks {
    /// Create links for `n` pages, all detached.
    pub fn new(n: usize) -> Self {
        LruLinks {
            prev: vec![NIL; n],
            next: vec![NIL; n],
        }
    }

    /// Number of page slots.
    pub fn capacity(&self) -> usize {
        self.prev.len()
    }
}

/// One LRU ordering (head = most recent, tail = least recent).
///
/// A page must never be on two lists at once; callers move pages between
/// lists with `remove` + `push_front`. Debug assertions catch double
/// insertion.
#[derive(Clone, Copy, Debug)]
pub struct LruList {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl LruList {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of pages on the list.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the list holds no pages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Most-recently-used page, if any.
    #[inline]
    pub fn front(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Least-recently-used page, if any.
    #[inline]
    pub fn back(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Insert `page` at the MRU end.
    pub fn push_front(&mut self, links: &mut LruLinks, page: u32) {
        debug_assert!(page != NIL && (page as usize) < links.capacity());
        debug_assert!(
            links.prev[page as usize] == NIL
                && links.next[page as usize] == NIL
                && self.head != page,
            "page {page} already linked"
        );
        links.prev[page as usize] = NIL;
        links.next[page as usize] = self.head;
        if self.head != NIL {
            links.prev[self.head as usize] = page;
        } else {
            self.tail = page;
        }
        self.head = page;
        self.len += 1;
    }

    /// Remove an arbitrary `page` from the list. The caller must know the
    /// page is on *this* list.
    pub fn remove(&mut self, links: &mut LruLinks, page: u32) {
        debug_assert!(page != NIL && (page as usize) < links.capacity());
        debug_assert!(self.len > 0, "remove from empty list");
        let p = links.prev[page as usize];
        let n = links.next[page as usize];
        if p != NIL {
            links.next[p as usize] = n;
        } else {
            debug_assert_eq!(self.head, page, "page not on this list");
            self.head = n;
        }
        if n != NIL {
            links.prev[n as usize] = p;
        } else {
            debug_assert_eq!(self.tail, page, "page not on this list");
            self.tail = p;
        }
        links.prev[page as usize] = NIL;
        links.next[page as usize] = NIL;
        self.len -= 1;
    }

    /// Remove and return the LRU page.
    pub fn pop_back(&mut self, links: &mut LruLinks) -> Option<u32> {
        let page = self.back()?;
        self.remove(links, page);
        Some(page)
    }

    /// Move an on-list page to the MRU end.
    pub fn move_to_front(&mut self, links: &mut LruLinks, page: u32) {
        if self.head == page {
            return;
        }
        self.remove(links, page);
        self.push_front(links, page);
    }

    /// Iterate from MRU to LRU (for tests and diagnostics; O(len)).
    pub fn iter<'a>(&'a self, links: &'a LruLinks) -> impl Iterator<Item = u32> + 'a {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let out = cur;
                cur = links.next[cur as usize];
                Some(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &LruList, links: &LruLinks) -> Vec<u32> {
        l.iter(links).collect()
    }

    #[test]
    fn push_and_order() {
        let mut links = LruLinks::new(8);
        let mut l = LruList::new();
        for p in [0, 1, 2] {
            l.push_front(&mut links, p);
        }
        assert_eq!(collect(&l, &links), vec![2, 1, 0]);
        assert_eq!(l.front(), Some(2));
        assert_eq!(l.back(), Some(0));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn pop_back_is_lru() {
        let mut links = LruLinks::new(8);
        let mut l = LruList::new();
        for p in [0, 1, 2] {
            l.push_front(&mut links, p);
        }
        assert_eq!(l.pop_back(&mut links), Some(0));
        assert_eq!(l.pop_back(&mut links), Some(1));
        assert_eq!(l.pop_back(&mut links), Some(2));
        assert_eq!(l.pop_back(&mut links), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut links = LruLinks::new(8);
        let mut l = LruList::new();
        for p in [0, 1, 2, 3] {
            l.push_front(&mut links, p);
        }
        l.remove(&mut links, 2);
        assert_eq!(collect(&l, &links), vec![3, 1, 0]);
        l.remove(&mut links, 3); // head
        assert_eq!(collect(&l, &links), vec![1, 0]);
        l.remove(&mut links, 0); // tail
        assert_eq!(collect(&l, &links), vec![1]);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut links = LruLinks::new(8);
        let mut l = LruList::new();
        for p in [0, 1, 2] {
            l.push_front(&mut links, p);
        }
        l.move_to_front(&mut links, 0);
        assert_eq!(collect(&l, &links), vec![0, 2, 1]);
        // Moving the head is a no-op.
        l.move_to_front(&mut links, 0);
        assert_eq!(collect(&l, &links), vec![0, 2, 1]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn reinsertion_after_removal() {
        let mut links = LruLinks::new(4);
        let mut l = LruList::new();
        l.push_front(&mut links, 1);
        l.remove(&mut links, 1);
        l.push_front(&mut links, 1);
        assert_eq!(collect(&l, &links), vec![1]);
    }

    #[test]
    fn two_lists_share_an_arena() {
        let mut links = LruLinks::new(8);
        let mut active = LruList::new();
        let mut inactive = LruList::new();
        active.push_front(&mut links, 0);
        active.push_front(&mut links, 1);
        inactive.push_front(&mut links, 2);
        // Demote page 1 from active to inactive.
        active.remove(&mut links, 1);
        inactive.push_front(&mut links, 1);
        assert_eq!(collect(&active, &links), vec![0]);
        assert_eq!(collect(&inactive, &links), vec![1, 2]);
    }

    #[test]
    fn singleton_list_edge_cases() {
        let mut links = LruLinks::new(2);
        let mut l = LruList::new();
        l.push_front(&mut links, 0);
        assert_eq!(l.front(), l.back());
        l.move_to_front(&mut links, 0);
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_back(&mut links), Some(0));
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }
}
