//! Per-page state flags and the pagemap view.
//!
//! The Migration Manager in the paper decides what to send by reading the
//! KVM/QEMU process's `/proc/pid/pagemap`: for every guest page it learns
//! whether the backing host page is *present*, *swapped out* (and at which
//! swap offset), or neither. [`PageFlags`] is the PTE-equivalent bit set and
//! [`PagemapEntry`] is the exact view `pagemap` exposes.

/// Compact per-page flag byte (the simulated PTE + struct-page bits).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PageFlags(u8);

impl PageFlags {
    /// Page is resident in host memory.
    pub const PRESENT: u8 = 1 << 0;
    /// Page content lives on the swap device (mutually exclusive with
    /// PRESENT except while a swap-cache copy exists, see HAS_SWAP_COPY).
    pub const SWAPPED: u8 = 1 << 1;
    /// Hardware accessed bit: set on every touch, cleared by reclaim scans.
    pub const ACCESSED: u8 = 1 << 2;
    /// Page modified since last swap-out / fault-in.
    pub const DIRTY: u8 = 1 << 3;
    /// A clean, still-valid copy of this resident page exists in its swap
    /// slot (Linux swap-cache): eviction can drop the page without a write.
    pub const HAS_SWAP_COPY: u8 = 1 << 4;
    /// A swap-in or swap-out for this page is in flight.
    pub const IO_INFLIGHT: u8 = 1 << 5;

    /// No flags set (a never-populated, zero page).
    pub const fn empty() -> Self {
        PageFlags(0)
    }

    /// Test any of the given bits.
    #[inline]
    pub const fn any(self, bits: u8) -> bool {
        self.0 & bits != 0
    }

    /// Test that all given bits are set.
    #[inline]
    pub const fn all(self, bits: u8) -> bool {
        self.0 & bits == bits
    }

    /// Set bits.
    #[inline]
    pub fn set(&mut self, bits: u8) {
        self.0 |= bits;
    }

    /// Clear bits.
    #[inline]
    pub fn clear(&mut self, bits: u8) {
        self.0 &= !bits;
    }

    /// Raw byte.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True when the page is resident.
    #[inline]
    pub const fn present(self) -> bool {
        self.any(Self::PRESENT)
    }

    /// True when the page is swapped out.
    #[inline]
    pub const fn swapped(self) -> bool {
        self.any(Self::SWAPPED)
    }
}

/// What `/proc/pid/pagemap` reports for one virtual page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PagemapEntry {
    /// Backed by a resident host page frame.
    Present,
    /// Swapped out; the payload is the page's offset (slot) on its swap
    /// device — exactly what Agile migration sends instead of the page.
    Swapped {
        /// Slot index on the per-VM swap device.
        slot: u32,
    },
    /// Never populated (reads as zeros).
    None,
}

impl PagemapEntry {
    /// True for [`PagemapEntry::Present`].
    pub fn is_present(self) -> bool {
        matches!(self, PagemapEntry::Present)
    }

    /// True for [`PagemapEntry::Swapped`].
    pub fn is_swapped(self) -> bool {
        matches!(self, PagemapEntry::Swapped { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_clear() {
        let mut f = PageFlags::empty();
        assert!(!f.present());
        f.set(PageFlags::PRESENT | PageFlags::ACCESSED);
        assert!(f.present());
        assert!(f.any(PageFlags::ACCESSED));
        assert!(f.all(PageFlags::PRESENT | PageFlags::ACCESSED));
        assert!(!f.all(PageFlags::PRESENT | PageFlags::DIRTY));
        f.clear(PageFlags::ACCESSED);
        assert!(!f.any(PageFlags::ACCESSED));
        assert!(f.present());
    }

    #[test]
    fn swapped_flag_independent_of_present() {
        let mut f = PageFlags::empty();
        f.set(PageFlags::SWAPPED);
        assert!(f.swapped());
        assert!(!f.present());
    }

    #[test]
    fn pagemap_entry_predicates() {
        assert!(PagemapEntry::Present.is_present());
        assert!(!PagemapEntry::Present.is_swapped());
        assert!(PagemapEntry::Swapped { slot: 7 }.is_swapped());
        assert!(!PagemapEntry::None.is_present());
    }
}
