//! # agile-memory
//!
//! The host-side memory-management substrate of the Agile live-migration
//! reproduction: everything the Linux kernel + cgroups would do for a
//! KVM/QEMU process, at 4 KB page granularity.
//!
//! * [`VmMemory`] — one VM's guest pages: PTE-style flags, content
//!   versions, a cgroup memory reservation, and a two-list (active /
//!   inactive) second-chance reclaim machine with swap-cache reuse.
//! * [`PagemapEntry`] — the `/proc/pid/pagemap` view the Migration Manager
//!   reads to detect swapped-out pages and their swap offsets (§IV-C of
//!   the paper).
//! * [`SwapBackend`] / [`SsdSwap`] — pluggable swap devices; the VMD-backed
//!   per-VM portable namespace lives in `agile-vmd` behind the same trait.
//! * [`HostMemory`] — per-host reservation ledger feeding the watermark
//!   migration trigger.
//!
//! All types are sans-IO: operations that imply device work return
//! descriptions ([`Eviction`], [`Touch::MajorFault`]) and the simulation
//! executor charges them to devices, so the semantics are unit-testable in
//! isolation.

pub mod epoch;
pub mod host;
pub mod lru;
pub mod page;
pub mod slots;
pub mod swap;
pub mod vmmem;

pub use epoch::{EpochReport, EpochTracker};
pub use host::HostMemory;
pub use lru::{LruLinks, LruList, NIL};
pub use page::{PageFlags, PagemapEntry};
pub use slots::{SlotAllocator, NO_SLOT};
pub use swap::{SsdSwap, SwapBackend, SwapIssue};
pub use vmmem::{Eviction, MemCounters, Slots, Touch, VmMemory, VmMemoryConfig};
