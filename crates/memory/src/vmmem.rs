//! Per-VM guest memory under a cgroup reservation.
//!
//! [`VmMemory`] is the host's view of one KVM/QEMU process: a flat array of
//! guest pages, each with PTE-style flags, an optional swap slot, and a
//! content version; plus the cgroup memory controller state (the
//! reservation) and a Linux-style two-list (active/inactive) reclaim
//! machine with second-chance promotion on the accessed bit and swap-cache
//! reuse of clean slots.
//!
//! The struct is *sans-IO*: it never talks to a device. Operations that
//! logically perform swap I/O return descriptions of that I/O
//! ([`Eviction`] records, [`Touch::MajorFault`] outcomes) and the caller —
//! the cluster executor — charges them to the right [`agile_sim_core::BlockDevice`]
//! or VMD namespace. This keeps the memory semantics exactly testable.
//!
//! Content versions: every guest write bumps the page's version counter.
//! Migration correctness tests assert that the destination ends up holding
//! the source's final version of every page — a strong end-to-end check on
//! the dirty-tracking logic of all three migration techniques.

use std::cell::RefCell;
use std::rc::Rc;

use crate::epoch::{EpochReport, EpochTracker};
use crate::lru::{LruLinks, LruList};
use crate::page::{PageFlags, PagemapEntry};
use crate::slots::{SlotAllocator, NO_SLOT};

/// The swap-slot allocator behind a VM memory: owned (a private SSD swap
/// area) or shared (a portable VMD namespace whose slot space is common to
/// the source and destination sides of a migration).
#[derive(Clone, Debug)]
pub enum Slots {
    /// Allocator private to this memory image.
    Owned(SlotAllocator),
    /// Allocator shared with other images of the same namespace.
    Shared(Rc<RefCell<SlotAllocator>>),
}

impl Slots {
    fn alloc(&mut self) -> Option<u32> {
        match self {
            Slots::Owned(a) => a.alloc(),
            Slots::Shared(a) => a.borrow_mut().alloc(),
        }
    }

    fn free(&mut self, slot: u32) {
        match self {
            Slots::Owned(a) => a.free(slot),
            Slots::Shared(a) => a.borrow_mut().free(slot),
        }
    }

    fn note_external(&mut self, slot: u32) {
        match self {
            Slots::Owned(a) => a.note_external(slot),
            Slots::Shared(a) => a.borrow_mut().note_external(slot),
        }
    }

    /// Slots currently allocated.
    pub fn live(&self) -> u32 {
        match self {
            Slots::Owned(a) => a.live(),
            Slots::Shared(a) => a.borrow().live(),
        }
    }
}

/// Result of a guest access to a page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Touch {
    /// Page resident — access completes at memory speed.
    Hit,
    /// Page never populated — a minor fault (zero-fill, no I/O). The caller
    /// must follow up with [`VmMemory::fault_in`].
    MinorFault,
    /// Page is on the swap device — the caller must read `slot` from the
    /// VM's swap backend and then call [`VmMemory::fault_in`].
    MajorFault {
        /// Swap slot holding the page.
        slot: u32,
    },
    /// Another thread already started a swap-in for this page; the caller
    /// should park until that I/O completes.
    InFlight,
}

/// One page evicted by reclaim. When `needs_write` is set the caller must
/// issue a swap-out write of the page to `slot`; otherwise a clean swap-cache
/// copy already exists there and the page was dropped for free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Guest page frame number.
    pub pfn: u32,
    /// Destination swap slot.
    pub slot: u32,
    /// Whether a device write is required.
    pub needs_write: bool,
}

/// Cumulative memory-management counters for one VM.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MemCounters {
    /// Zero-fill faults (first touch of a page).
    pub minor_faults: u64,
    /// Faults that required a swap-in read.
    pub major_faults: u64,
    /// Evictions that required a swap-out write.
    pub swap_out_writes: u64,
    /// Evictions satisfied by a clean swap-cache copy (no write).
    pub clean_drops: u64,
}

/// Configuration for a VM's memory.
#[derive(Clone, Copy, Debug)]
pub struct VmMemoryConfig {
    /// Guest physical memory size in pages.
    pub pages: u32,
    /// Page size in bytes (4096 in the paper's testbed).
    pub page_size: u64,
    /// Initial cgroup reservation in pages.
    pub limit_pages: u32,
}

impl VmMemoryConfig {
    /// Convenience constructor from byte sizes (rounding down to whole
    /// pages).
    pub fn from_bytes(mem_bytes: u64, page_size: u64, limit_bytes: u64) -> Self {
        VmMemoryConfig {
            pages: (mem_bytes / page_size) as u32,
            page_size,
            limit_pages: (limit_bytes / page_size) as u32,
        }
    }
}

/// The host-side memory state of one VM (one KVM/QEMU process in a cgroup).
#[derive(Clone, Debug)]
pub struct VmMemory {
    page_size: u64,
    flags: Vec<PageFlags>,
    swap_slot: Vec<u32>,
    version: Vec<u32>,
    /// Word-level shadow of the PRESENT flag (bit `p` of word `p / 64`),
    /// kept in sync at every residency transition so whole-address-space
    /// scans run 64 pages per load instead of per-byte flag reads.
    present_map: Vec<u64>,
    /// Word-level shadow of the SWAPPED flag.
    swapped_map: Vec<u64>,
    links: LruLinks,
    active: LruList,
    inactive: LruList,
    limit_pages: u32,
    swapped: u32,
    slots: Slots,
    counters: MemCounters,
    /// Simulated-PML dirty-page epoch tracker; `None` (the default) costs
    /// one branch per guest access and keeps legacy behaviour untouched.
    epoch: Option<Box<EpochTracker>>,
}

impl VmMemory {
    /// Create a fully-unpopulated VM memory.
    pub fn new(cfg: VmMemoryConfig) -> Self {
        let n = cfg.pages as usize;
        VmMemory {
            page_size: cfg.page_size,
            flags: vec![PageFlags::empty(); n],
            swap_slot: vec![NO_SLOT; n],
            version: vec![0; n],
            present_map: vec![0; n.div_ceil(64)],
            swapped_map: vec![0; n.div_ceil(64)],
            links: LruLinks::new(n),
            active: LruList::new(),
            inactive: LruList::new(),
            limit_pages: cfg.limit_pages,
            swapped: 0,
            slots: Slots::Owned(SlotAllocator::unbounded()),
            counters: MemCounters::default(),
            epoch: None,
        }
    }

    /// Replace the slot allocator with a shared one (the portable per-VM
    /// swap namespace: source and destination images of a migration must
    /// draw from one slot space). Must be called before any eviction.
    pub fn use_shared_slots(&mut self, shared: Rc<RefCell<SlotAllocator>>) {
        debug_assert_eq!(self.slots.live(), 0, "allocator already in use");
        self.slots = Slots::Shared(shared);
    }

    /// Total guest pages.
    #[inline]
    pub fn pages(&self) -> u32 {
        self.flags.len() as u32
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Resident pages (charged against the reservation).
    #[inline]
    pub fn resident_pages(&self) -> u32 {
        self.active.len() + self.inactive.len()
    }

    /// Pages currently swapped out.
    #[inline]
    pub fn swapped_pages(&self) -> u32 {
        self.swapped
    }

    /// Current reservation in pages.
    #[inline]
    pub fn limit_pages(&self) -> u32 {
        self.limit_pages
    }

    /// Current reservation in bytes.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_pages as u64 * self.page_size
    }

    /// Cumulative counters.
    pub fn counters(&self) -> MemCounters {
        self.counters
    }

    /// Content version of a page (bumped on every guest write).
    #[inline]
    pub fn version(&self, pfn: u32) -> u32 {
        self.version[pfn as usize]
    }

    /// All content versions as a flat slice (index = PFN). Lets migration's
    /// dirty scan compare whole cache lines instead of calling
    /// [`VmMemory::version`] per page.
    #[inline]
    pub fn versions(&self) -> &[u32] {
        &self.version
    }

    /// Word-level presence map: bit `p % 64` of word `p / 64` is set iff
    /// page `p` is resident. Tail bits beyond [`VmMemory::pages`] are zero.
    #[inline]
    pub fn present_words(&self) -> &[u64] {
        &self.present_map
    }

    /// Word-level swapped map, same layout as
    /// [`VmMemory::present_words`].
    #[inline]
    pub fn swapped_words(&self) -> &[u64] {
        &self.swapped_map
    }

    /// Visit every swapped-out page in ascending PFN order, word-at-a-time.
    pub fn for_each_swapped(&self, mut f: impl FnMut(u32)) {
        for (wi, &w) in self.swapped_map.iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let pfn = wi as u32 * 64 + word.trailing_zeros();
                word &= word - 1;
                f(pfn);
            }
        }
    }

    #[inline]
    fn shadow(map: &mut [u64], pfn: u32, on: bool) {
        let w = &mut map[pfn as usize / 64];
        let mask = 1u64 << (pfn % 64);
        if on {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// The `/proc/pid/pagemap` view of a page.
    #[inline]
    pub fn pagemap(&self, pfn: u32) -> PagemapEntry {
        let f = self.flags[pfn as usize];
        if f.present() {
            PagemapEntry::Present
        } else if f.swapped() {
            PagemapEntry::Swapped {
                slot: self.swap_slot[pfn as usize],
            }
        } else {
            PagemapEntry::None
        }
    }

    /// Raw flags of a page (tests and migration internals).
    #[inline]
    pub fn page_flags(&self, pfn: u32) -> PageFlags {
        self.flags[pfn as usize]
    }

    /// Arm simulated-PML epoch tracking with a `log_cap`-entry buffer,
    /// replacing (and discarding) any in-progress epoch. Guest accesses
    /// from this instant on feed the tracker; migration-side installs
    /// never do.
    pub fn arm_epoch_tracking(&mut self, log_cap: usize) {
        self.epoch = Some(Box::new(EpochTracker::new(log_cap, self.pages())));
    }

    /// Stop epoch tracking and drop any in-progress epoch.
    pub fn disarm_epoch_tracking(&mut self) {
        self.epoch = None;
    }

    /// Whether epoch tracking is armed.
    #[inline]
    pub fn epoch_armed(&self) -> bool {
        self.epoch.is_some()
    }

    /// Close the current epoch and start the next one. Panics if tracking
    /// is not armed — callers gate on [`VmMemory::epoch_armed`].
    pub fn drain_epoch(&mut self) -> EpochReport {
        let tracker = self.epoch.as_mut().expect("epoch tracking not armed");
        tracker.drain(&self.present_map)
    }

    #[inline]
    fn note_epoch(&mut self, pfn: u32) {
        if let Some(t) = self.epoch.as_deref_mut() {
            t.note(pfn);
        }
    }

    /// Guest access. See [`Touch`] for the contract.
    pub fn touch(&mut self, pfn: u32, write: bool) -> Touch {
        let i = pfn as usize;
        let f = self.flags[i];
        if f.present() {
            self.note_epoch(pfn);
            let fl = &mut self.flags[i];
            fl.set(PageFlags::ACCESSED);
            if write {
                fl.set(PageFlags::DIRTY);
                self.version[i] = self.version[i].wrapping_add(1);
                // A write invalidates any swap-resident copy; Linux frees
                // the slot at the write fault, so re-eviction allocates a
                // fresh one — which is what randomizes the swap layout of
                // a write-heavy (busy) VM.
                if self.swap_slot[i] != NO_SLOT {
                    self.slots.free(self.swap_slot[i]);
                    self.swap_slot[i] = NO_SLOT;
                    self.flags[i].clear(PageFlags::HAS_SWAP_COPY);
                }
            }
            Touch::Hit
        } else if f.any(PageFlags::IO_INFLIGHT) {
            Touch::InFlight
        } else if f.swapped() {
            Touch::MajorFault {
                slot: self.swap_slot[i],
            }
        } else {
            Touch::MinorFault
        }
    }

    /// Mark that a swap-in I/O has been issued for `pfn` so concurrent
    /// touches return [`Touch::InFlight`].
    pub fn begin_swap_in(&mut self, pfn: u32) {
        let f = &mut self.flags[pfn as usize];
        debug_assert!(f.swapped() && !f.any(PageFlags::IO_INFLIGHT));
        f.set(PageFlags::IO_INFLIGHT);
    }

    /// Complete a fault (minor, or major once the swap-in I/O finished).
    /// Makes the page resident and returns any evictions needed to stay
    /// within the reservation.
    pub fn fault_in(&mut self, pfn: u32, write: bool, evictions: &mut Vec<Eviction>) {
        // A completed fault is one guest access, counted here (not at the
        // triggering `touch`) so parked InFlight waiters aren't multiply
        // counted and migration-side installs never register.
        self.note_epoch(pfn);
        let i = pfn as usize;
        let was_swapped = self.flags[i].swapped();
        if was_swapped {
            self.counters.major_faults += 1;
            self.swapped -= 1;
        } else {
            debug_assert!(
                !self.flags[i].present(),
                "fault_in on an already-present page"
            );
            self.counters.minor_faults += 1;
        }
        Self::shadow(&mut self.present_map, pfn, true);
        Self::shadow(&mut self.swapped_map, pfn, false);
        {
            let f = &mut self.flags[i];
            f.clear(PageFlags::IO_INFLIGHT | PageFlags::SWAPPED);
            f.set(PageFlags::PRESENT | PageFlags::ACCESSED);
            if was_swapped {
                // The swap slot still holds a valid copy (swap cache).
                f.set(PageFlags::HAS_SWAP_COPY);
            }
            if write {
                f.set(PageFlags::DIRTY);
                self.version[i] = self.version[i].wrapping_add(1);
                if self.swap_slot[i] != NO_SLOT {
                    self.slots.free(self.swap_slot[i]);
                    self.swap_slot[i] = NO_SLOT;
                    f.clear(PageFlags::HAS_SWAP_COPY);
                }
            }
        }
        self.active.push_front(&mut self.links, pfn);
        self.reclaim_to_limit(evictions);
    }

    /// Change the cgroup reservation; reclaims down immediately if the VM
    /// is over the new limit (what `memory.limit_in_bytes` does).
    pub fn set_limit_pages(&mut self, limit: u32, evictions: &mut Vec<Eviction>) {
        self.limit_pages = limit;
        self.reclaim_to_limit(evictions);
    }

    /// Set the reservation in bytes (rounded down to pages).
    pub fn set_limit_bytes(&mut self, bytes: u64, evictions: &mut Vec<Eviction>) {
        self.set_limit_pages((bytes / self.page_size) as u32, evictions);
    }

    fn reclaim_to_limit(&mut self, evictions: &mut Vec<Eviction>) {
        while self.resident_pages() > self.limit_pages {
            match self.reclaim_one() {
                Some(ev) => evictions.push(ev),
                None => break, // everything pinned by in-flight I/O
            }
        }
    }

    /// Demote one page from the active tail to the inactive head, giving
    /// recently-accessed pages a second chance (they rotate back to the
    /// active head with the bit cleared). Returns false if nothing could be
    /// demoted.
    fn demote_one(&mut self) -> bool {
        let mut budget = self.active.len();
        while budget > 0 {
            budget -= 1;
            let p = match self.active.pop_back(&mut self.links) {
                Some(p) => p,
                None => return false,
            };
            let f = &mut self.flags[p as usize];
            if f.any(PageFlags::ACCESSED) {
                // Referenced since the last scan: age it instead.
                f.clear(PageFlags::ACCESSED);
                self.active.push_front(&mut self.links, p);
                continue;
            }
            self.inactive.push_front(&mut self.links, p);
            return true;
        }
        // Every active page was referenced; force-demote the tail.
        match self.active.pop_back(&mut self.links) {
            Some(p) => {
                self.flags[p as usize].clear(PageFlags::ACCESSED);
                self.inactive.push_front(&mut self.links, p);
                true
            }
            None => false,
        }
    }

    /// Evict one page using two-list second-chance reclaim.
    fn reclaim_one(&mut self) -> Option<Eviction> {
        // Keep the inactive list at least a third of resident memory, like
        // Linux's inactive_is_low heuristic for anonymous LRU.
        let target_inactive = self.resident_pages() / 3;
        while self.inactive.len() < target_inactive {
            if !self.demote_one() {
                break;
            }
        }
        // Scan the inactive tail with second chance; bound the scan so a
        // fully-referenced list still converges.
        let mut scans = self.inactive.len().max(1);
        while scans > 0 {
            scans -= 1;
            let victim = match self.inactive.pop_back(&mut self.links) {
                Some(v) => v,
                None => {
                    // Inactive empty: demote one active page and retry.
                    if self.demote_one() {
                        continue;
                    }
                    return None;
                }
            };
            let vf = self.flags[victim as usize];
            if vf.any(PageFlags::IO_INFLIGHT) {
                // Cannot evict a page mid-I/O; rotate it away.
                self.inactive.push_front(&mut self.links, victim);
                continue;
            }
            if vf.any(PageFlags::ACCESSED) {
                // Second chance: promote back to active.
                self.flags[victim as usize].clear(PageFlags::ACCESSED);
                self.active.push_front(&mut self.links, victim);
                continue;
            }
            return Some(self.evict(victim));
        }
        // Scan budget exhausted: force-evict the inactive tail if possible.
        match self.inactive.pop_back(&mut self.links) {
            Some(victim) if self.flags[victim as usize].any(PageFlags::IO_INFLIGHT) => {
                self.inactive.push_front(&mut self.links, victim);
                None
            }
            Some(victim) => Some(self.evict(victim)),
            None => None,
        }
    }

    /// Detach `victim` (already off the lists) and produce its eviction
    /// record.
    fn evict(&mut self, victim: u32) -> Eviction {
        let i = victim as usize;
        let f = self.flags[i];
        debug_assert!(f.present());
        let clean_copy = f.any(PageFlags::HAS_SWAP_COPY) && !f.any(PageFlags::DIRTY);
        let slot = if self.swap_slot[i] != NO_SLOT {
            self.swap_slot[i]
        } else {
            let s = self.slots.alloc().expect("unbounded namespace");
            self.swap_slot[i] = s;
            s
        };
        let needs_write = !clean_copy;
        if needs_write {
            self.counters.swap_out_writes += 1;
        } else {
            self.counters.clean_drops += 1;
        }
        let fl = &mut self.flags[i];
        fl.clear(
            PageFlags::PRESENT | PageFlags::DIRTY | PageFlags::ACCESSED | PageFlags::HAS_SWAP_COPY,
        );
        fl.set(PageFlags::SWAPPED);
        Self::shadow(&mut self.present_map, victim, false);
        Self::shadow(&mut self.swapped_map, victim, true);
        self.swapped += 1;
        Eviction {
            pfn: victim,
            slot,
            needs_write,
        }
    }

    // ------------------------------------------------------------------
    // Migration-side operations (destination population, source teardown)
    // ------------------------------------------------------------------

    /// Install a page received over the migration channel (destination
    /// side), recording the content version it carries. Frees any stale
    /// swap state for the page and may trigger reclaim.
    pub fn install_page(&mut self, pfn: u32, version: u32, evictions: &mut Vec<Eviction>) {
        let i = pfn as usize;
        let f = self.flags[i];
        if f.present() {
            // Overwrite of an already-received page (a newer copy pushed
            // from the source): just update content and drop any stale
            // swap copy.
            self.version[i] = version;
            let fl = &mut self.flags[i];
            fl.set(PageFlags::DIRTY);
            fl.clear(PageFlags::HAS_SWAP_COPY);
            if self.swap_slot[i] != NO_SLOT {
                self.slots.free(self.swap_slot[i]);
                self.swap_slot[i] = NO_SLOT;
            }
            return;
        }
        if f.swapped() || self.swap_slot[i] != NO_SLOT {
            // A newer copy supersedes the swap-resident one.
            self.slots.free(self.swap_slot[i]);
            self.swap_slot[i] = NO_SLOT;
            if f.swapped() {
                self.swapped -= 1;
            }
        }
        let fl = &mut self.flags[i];
        fl.clear(PageFlags::SWAPPED | PageFlags::IO_INFLIGHT);
        fl.set(PageFlags::PRESENT | PageFlags::DIRTY);
        Self::shadow(&mut self.present_map, pfn, true);
        Self::shadow(&mut self.swapped_map, pfn, false);
        self.version[i] = version;
        self.active.push_front(&mut self.links, pfn);
        self.reclaim_to_limit(evictions);
    }

    /// Record that a page's content lives at `slot` on the VM's (portable)
    /// swap device — the destination-side handling of a `SWAPPED`-flag
    /// message in Agile migration. `version` is the content version the
    /// slot holds.
    pub fn install_swapped(&mut self, pfn: u32, slot: u32, version: u32) {
        let i = pfn as usize;
        debug_assert!(
            !self.flags[i].present() && !self.flags[i].swapped(),
            "install_swapped over existing state"
        );
        self.flags[i].set(PageFlags::SWAPPED);
        Self::shadow(&mut self.swapped_map, pfn, true);
        self.swap_slot[i] = slot;
        self.version[i] = version;
        self.swapped += 1;
        self.slots.note_external(slot);
    }

    /// Drop a stale swapped-page tracking entry *without* freeing the slot
    /// (the authoritative image already freed it — destination-side
    /// handling of the postcopy discard bitmap).
    pub fn discard_swapped(&mut self, pfn: u32) {
        let i = pfn as usize;
        let f = &mut self.flags[i];
        debug_assert!(f.swapped() && !f.present());
        f.clear(PageFlags::SWAPPED | PageFlags::HAS_SWAP_COPY);
        Self::shadow(&mut self.swapped_map, pfn, false);
        self.swap_slot[i] = NO_SLOT;
        self.swapped -= 1;
    }

    /// Iterate the PFNs of all resident pages (MRU → LRU order, active list
    /// first). Used by migration to enumerate what to send.
    pub fn resident_pfns(&self) -> impl Iterator<Item = u32> + '_ {
        self.active
            .iter(&self.links)
            .chain(self.inactive.iter(&self.links))
    }

    /// Internal consistency check (O(n); meant for tests and debugging).
    pub fn check_invariants(&self) {
        let mut on_lists = 0u32;
        for pfn in self
            .active
            .iter(&self.links)
            .chain(self.inactive.iter(&self.links))
        {
            assert!(
                self.flags[pfn as usize].present(),
                "listed page not present"
            );
            on_lists += 1;
        }
        assert_eq!(on_lists, self.resident_pages());
        let swapped_scan = self.flags.iter().filter(|f| f.swapped()).count() as u32;
        assert_eq!(swapped_scan, self.swapped, "swapped counter out of sync");
        // The word-level shadow maps must agree with the per-page flags.
        let present_words: u32 = self.present_map.iter().map(|w| w.count_ones()).sum();
        assert_eq!(
            present_words,
            self.resident_pages(),
            "present map out of sync"
        );
        let swapped_words: u32 = self.swapped_map.iter().map(|w| w.count_ones()).sum();
        assert_eq!(swapped_words, self.swapped, "swapped map out of sync");
        for (i, f) in self.flags.iter().enumerate() {
            let in_present = self.present_map[i / 64] & (1 << (i % 64)) != 0;
            let in_swapped = self.swapped_map[i / 64] & (1 << (i % 64)) != 0;
            assert_eq!(in_present, f.present(), "present shadow wrong for page {i}");
            assert_eq!(in_swapped, f.swapped(), "swapped shadow wrong for page {i}");
        }
        for (i, f) in self.flags.iter().enumerate() {
            if f.swapped() {
                assert!(!f.present(), "page {i} both present and swapped");
                assert_ne!(self.swap_slot[i], NO_SLOT, "swapped page {i} without slot");
            }
            if f.present() && f.any(PageFlags::HAS_SWAP_COPY) {
                assert_ne!(self.swap_slot[i], NO_SLOT);
            }
            if f.present() && !f.any(PageFlags::HAS_SWAP_COPY) {
                assert_eq!(
                    self.swap_slot[i], NO_SLOT,
                    "present page {i} without swap copy must hold no slot"
                );
            }
            if !f.present() && !f.swapped() {
                assert_eq!(self.swap_slot[i], NO_SLOT, "untracked page {i} holds slot");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(pages: u32, limit: u32) -> VmMemory {
        VmMemory::new(VmMemoryConfig {
            pages,
            page_size: 4096,
            limit_pages: limit,
        })
    }

    /// Populate pages [0, n) with minor faults, collecting evictions.
    fn populate(m: &mut VmMemory, n: u32, evs: &mut Vec<Eviction>) {
        for p in 0..n {
            assert_eq!(m.touch(p, false), Touch::MinorFault);
            m.fault_in(p, false, evs);
        }
    }

    #[test]
    fn first_touch_is_minor_fault_then_hit() {
        let mut m = mem(16, 16);
        let mut evs = Vec::new();
        assert_eq!(m.touch(3, false), Touch::MinorFault);
        m.fault_in(3, false, &mut evs);
        assert_eq!(m.touch(3, false), Touch::Hit);
        assert!(evs.is_empty());
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.counters().minor_faults, 1);
        m.check_invariants();
    }

    #[test]
    fn writes_bump_versions() {
        let mut m = mem(4, 4);
        let mut evs = Vec::new();
        m.touch(0, true);
        m.fault_in(0, true, &mut evs);
        assert_eq!(m.version(0), 1);
        m.touch(0, true);
        assert_eq!(m.version(0), 2);
        m.touch(0, false);
        assert_eq!(m.version(0), 2);
    }

    #[test]
    fn over_limit_population_evicts_lru() {
        let mut m = mem(8, 4);
        let mut evs = Vec::new();
        populate(&mut m, 6, &mut evs);
        assert_eq!(m.resident_pages(), 4);
        assert_eq!(evs.len(), 2);
        // The first-touched pages (0, 1) are the cold ones.
        let evicted: Vec<u32> = evs.iter().map(|e| e.pfn).collect();
        assert!(evicted.contains(&0) && evicted.contains(&1), "{evicted:?}");
        for e in &evs {
            assert!(e.needs_write, "anon page first swap-out must write");
        }
        assert_eq!(m.pagemap(0), PagemapEntry::Swapped { slot: evs[0].slot });
        m.check_invariants();
    }

    #[test]
    fn major_fault_roundtrip() {
        let mut m = mem(8, 2);
        let mut evs = Vec::new();
        populate(&mut m, 3, &mut evs);
        assert_eq!(evs.len(), 1);
        let slot = evs[0].slot;
        let victim = evs[0].pfn;
        match m.touch(victim, false) {
            Touch::MajorFault { slot: s } => assert_eq!(s, slot),
            other => panic!("expected major fault, got {other:?}"),
        }
        m.begin_swap_in(victim);
        assert_eq!(m.touch(victim, false), Touch::InFlight);
        let mut evs2 = Vec::new();
        m.fault_in(victim, false, &mut evs2);
        assert_eq!(m.touch(victim, false), Touch::Hit);
        assert_eq!(m.counters().major_faults, 1);
        assert_eq!(evs2.len(), 1, "faulting in over limit evicts another");
        m.check_invariants();
    }

    #[test]
    fn clean_swap_cache_eviction_is_free() {
        let mut m = mem(8, 2);
        let mut evs = Vec::new();
        populate(&mut m, 3, &mut evs);
        let victim = evs[0].pfn;
        let slot = evs[0].slot;
        // Swap it back in read-only...
        m.begin_swap_in(victim);
        let mut evs2 = Vec::new();
        m.fault_in(victim, false, &mut evs2);
        // ...then force everything out: the clean copy drops for free.
        let mut evs3 = Vec::new();
        m.set_limit_pages(0, &mut evs3);
        let e = evs3
            .iter()
            .find(|e| e.pfn == victim)
            .expect("victim evicted");
        assert!(!e.needs_write, "clean swap-cache copy should drop free");
        assert_eq!(e.slot, slot, "slot reused");
        assert!(m.counters().clean_drops >= 1);
        m.check_invariants();
    }

    #[test]
    fn dirtied_page_invalidates_swap_copy() {
        let mut m = mem(8, 2);
        let mut evs = Vec::new();
        populate(&mut m, 3, &mut evs);
        let victim = evs[0].pfn;
        m.begin_swap_in(victim);
        let mut tmp = Vec::new();
        m.fault_in(victim, true, &mut tmp); // write during fault-in
        let mut evs3 = Vec::new();
        m.set_limit_pages(0, &mut evs3);
        let e = evs3
            .iter()
            .find(|e| e.pfn == victim)
            .expect("victim evicted");
        assert!(e.needs_write, "dirty page must be rewritten");
        m.check_invariants();
    }

    #[test]
    fn shrinking_limit_reclaims_immediately() {
        let mut m = mem(16, 16);
        let mut evs = Vec::new();
        populate(&mut m, 10, &mut evs);
        assert!(evs.is_empty());
        m.set_limit_pages(4, &mut evs);
        assert_eq!(m.resident_pages(), 4);
        assert_eq!(evs.len(), 6);
        m.check_invariants();
    }

    #[test]
    fn growing_limit_does_not_fault_anything_in() {
        let mut m = mem(16, 4);
        let mut evs = Vec::new();
        populate(&mut m, 8, &mut evs);
        let resident_before = m.resident_pages();
        let mut evs2 = Vec::new();
        m.set_limit_pages(16, &mut evs2);
        assert!(evs2.is_empty());
        assert_eq!(m.resident_pages(), resident_before);
    }

    #[test]
    fn second_chance_protects_hot_pages_under_steady_pressure() {
        // Working set = pages 0..4, plus a cold stream cycling through
        // 24 other pages, under an 8-page reservation. After convergence
        // the hot pages must stay resident: the cold stream churns through
        // the inactive list while re-touched hot pages keep earning their
        // second chance.
        let mut m = mem(32, 8);
        let mut evs = Vec::new();
        let mut hot_major_faults_late = 0;
        for iter in 0..2000u32 {
            for p in 0..4 {
                match m.touch(p, false) {
                    Touch::Hit => {}
                    Touch::MajorFault { .. } => {
                        if iter > 100 {
                            hot_major_faults_late += 1;
                        }
                        m.begin_swap_in(p);
                        m.fault_in(p, false, &mut evs);
                    }
                    Touch::MinorFault => m.fault_in(p, false, &mut evs),
                    Touch::InFlight => unreachable!(),
                }
            }
            let cold = 5 + (iter % 24);
            match m.touch(cold, false) {
                Touch::Hit => {}
                Touch::MajorFault { .. } => {
                    m.begin_swap_in(cold);
                    m.fault_in(cold, false, &mut evs);
                }
                Touch::MinorFault => m.fault_in(cold, false, &mut evs),
                Touch::InFlight => unreachable!(),
            }
        }
        assert_eq!(
            hot_major_faults_late, 0,
            "hot pages should stay resident after warm-up"
        );
        for p in 0..4 {
            assert!(m.pagemap(p).is_present(), "hot page {p} not resident");
        }
        m.check_invariants();
    }

    #[test]
    fn pagemap_views() {
        let mut m = mem(8, 2);
        let mut evs = Vec::new();
        assert_eq!(m.pagemap(5), PagemapEntry::None);
        populate(&mut m, 3, &mut evs);
        assert!(m.pagemap(2).is_present());
        assert!(m.pagemap(evs[0].pfn).is_swapped());
    }

    #[test]
    fn install_page_makes_resident_with_version() {
        let mut m = mem(8, 8);
        let mut evs = Vec::new();
        m.install_page(3, 42, &mut evs);
        assert!(m.pagemap(3).is_present());
        assert_eq!(m.version(3), 42);
        // A newer pushed copy overwrites in place.
        m.install_page(3, 43, &mut evs);
        assert_eq!(m.version(3), 43);
        assert_eq!(m.resident_pages(), 1);
        m.check_invariants();
    }

    #[test]
    fn install_swapped_then_fault() {
        let mut m = mem(8, 8);
        m.install_swapped(2, 17, 5);
        match m.touch(2, false) {
            Touch::MajorFault { slot } => assert_eq!(slot, 17),
            other => panic!("{other:?}"),
        }
        let mut evs = Vec::new();
        m.begin_swap_in(2);
        m.fault_in(2, false, &mut evs);
        assert!(m.pagemap(2).is_present());
        assert_eq!(m.version(2), 5);
        m.check_invariants();
    }

    #[test]
    fn install_page_supersedes_swapped_state() {
        let mut m = mem(8, 8);
        m.install_swapped(2, 9, 1);
        let mut evs = Vec::new();
        m.install_page(2, 7, &mut evs);
        assert!(m.pagemap(2).is_present());
        assert_eq!(m.version(2), 7);
        m.check_invariants();
    }

    #[test]
    fn resident_pfns_enumerates_all_resident() {
        let mut m = mem(16, 8);
        let mut evs = Vec::new();
        populate(&mut m, 12, &mut evs);
        let listed: Vec<u32> = m.resident_pfns().collect();
        assert_eq!(listed.len(), m.resident_pages() as usize);
        for p in &listed {
            assert!(m.pagemap(*p).is_present());
        }
    }

    #[test]
    fn counters_balance() {
        let mut m = mem(32, 8);
        let mut evs = Vec::new();
        populate(&mut m, 20, &mut evs);
        let c = m.counters();
        assert_eq!(c.minor_faults, 20);
        assert_eq!(c.swap_out_writes + c.clean_drops, evs.len() as u64);
    }
}
