//! Simulated Intel PML (Page Modification Logging) epoch tracking.
//!
//! Real PML gives the hypervisor a hardware-filled log of guest-dirtied
//! page addresses: a 512-entry in-memory buffer that vmexits when full,
//! at which point the VMM either drains it or falls back to scanning PTE
//! accessed/dirty bits. Bitchebe et al. (*Intel Page Modification Logging
//! for VM working set estimation*) sample that log on a fixed epoch tick
//! to estimate the working-set size with **zero swap pressure** — the
//! signal the paper's iostat-style estimator is blind to.
//!
//! [`EpochTracker`] is the sans-IO simulation of that machinery, hung off
//! [`crate::VmMemory`]'s guest-access paths (`touch` hits and completed
//! `fault_in`s — migration-side installs are *not* guest accesses and are
//! never counted):
//!
//! * A per-epoch **touched bitmap** records every distinct guest page
//!   accessed since the last drain. Its population count is the exact
//!   ground truth (`distinct_pages`) the accuracy harness scores
//!   estimators against.
//! * A bounded **log** of the first `log_cap` distinct touches mirrors
//!   the 512-entry PML buffer. While the log never fills, the PML
//!   estimate equals the ground truth exactly.
//! * On **overflow** the simulated VMM falls back to a full scan of PTE
//!   bits at drain time — but PTE bits only exist for *still-resident*
//!   pages, so pages touched and then evicted within the epoch are
//!   visible only if they made it into the log before it filled. The
//!   fallback estimate is `|touched ∩ resident| + |logged ∖ resident|`:
//!   a disjoint union, hence never above the truth, and monotonically
//!   non-decreasing in `log_cap` (a bigger buffer is a superset prefix
//!   of the same touch sequence).
//!
//! Draining clears the bitmap and log but keeps tracking armed — exactly
//! a PML buffer swap at the epoch boundary.

/// What one epoch drain observed. All counts are in pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochReport {
    /// Exact distinct pages touched this epoch (ground truth).
    pub distinct_pages: u32,
    /// The simulated-PML estimate: exact when the log never overflowed,
    /// otherwise the full-scan fallback (see module docs). Never exceeds
    /// `distinct_pages`.
    pub pml_pages: u32,
    /// Whether the bounded log filled up this epoch.
    pub overflowed: bool,
}

/// Per-VM dirty-page epoch tracker (see module docs).
#[derive(Clone, Debug)]
pub struct EpochTracker {
    /// First `log_cap` distinct PFNs touched this epoch.
    log: Vec<u32>,
    log_cap: usize,
    overflowed: bool,
    /// Word-level bitmap of every page touched this epoch.
    touched_map: Vec<u64>,
    distinct: u32,
}

impl EpochTracker {
    /// Tracker for a `pages`-page address space with a `log_cap`-entry
    /// PML buffer (real hardware: 512).
    pub fn new(log_cap: usize, pages: u32) -> Self {
        EpochTracker {
            log: Vec::with_capacity(log_cap.min(1 << 16)),
            log_cap,
            overflowed: false,
            touched_map: vec![0; (pages as usize).div_ceil(64)],
            distinct: 0,
        }
    }

    /// Record a guest access to `pfn`. Idempotent within an epoch.
    #[inline]
    pub fn note(&mut self, pfn: u32) {
        let w = &mut self.touched_map[pfn as usize / 64];
        let mask = 1u64 << (pfn % 64);
        if *w & mask != 0 {
            return;
        }
        *w |= mask;
        self.distinct += 1;
        if !self.overflowed {
            if self.log.len() < self.log_cap {
                self.log.push(pfn);
            } else {
                self.overflowed = true;
            }
        }
    }

    /// Distinct pages touched so far this epoch.
    #[inline]
    pub fn distinct(&self) -> u32 {
        self.distinct
    }

    /// Close the epoch: compute the report against `present_map` (the
    /// word-level residency bitmap at drain time) and reset for the next
    /// epoch.
    pub fn drain(&mut self, present_map: &[u64]) -> EpochReport {
        let pml_pages = if !self.overflowed {
            self.distinct
        } else {
            // Full-scan fallback: PTE accessed/dirty bits survive only on
            // resident pages; evicted-after-touch pages are recoverable
            // only from the log prefix. The two sets are disjoint.
            let resident_touched: u32 = self
                .touched_map
                .iter()
                .zip(present_map)
                .map(|(t, p)| (t & p).count_ones())
                .sum();
            let evicted_logged = self
                .log
                .iter()
                .filter(|&&pfn| present_map[pfn as usize / 64] & (1u64 << (pfn % 64)) == 0)
                .count() as u32;
            resident_touched + evicted_logged
        };
        let report = EpochReport {
            distinct_pages: self.distinct,
            pml_pages,
            overflowed: self.overflowed,
        };
        for w in &mut self.touched_map {
            *w = 0;
        }
        self.log.clear();
        self.overflowed = false;
        self.distinct = 0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_log_never_fills() {
        let mut t = EpochTracker::new(512, 1024);
        for p in 0..100u32 {
            t.note(p);
            t.note(p); // repeats are free
        }
        let all_resident = vec![u64::MAX; 16];
        let r = t.drain(&all_resident);
        assert_eq!(r.distinct_pages, 100);
        assert_eq!(r.pml_pages, 100);
        assert!(!r.overflowed);
    }

    #[test]
    fn drain_resets_for_next_epoch() {
        let mut t = EpochTracker::new(512, 128);
        t.note(5);
        let resident = vec![u64::MAX; 2];
        assert_eq!(t.drain(&resident).distinct_pages, 1);
        let r = t.drain(&resident);
        assert_eq!(r.distinct_pages, 0);
        assert_eq!(r.pml_pages, 0);
        assert!(!r.overflowed);
    }

    #[test]
    fn overflow_never_over_reports_and_sees_resident_pages() {
        let mut t = EpochTracker::new(4, 256);
        for p in 0..64u32 {
            t.note(p);
        }
        // All touched pages still resident: the full scan recovers them all.
        let resident = vec![u64::MAX; 4];
        let r = t.drain(&resident);
        assert!(r.overflowed);
        assert_eq!(r.distinct_pages, 64);
        assert_eq!(r.pml_pages, 64, "resident pages recovered by full scan");
    }

    #[test]
    fn overflow_loses_only_unlogged_evicted_pages() {
        let mut t = EpochTracker::new(4, 256);
        for p in 0..64u32 {
            t.note(p);
        }
        // Pages 0..32 evicted after being touched: the log holds 0..4, so
        // the estimate sees 4 logged-evicted + 32 resident = 36 of 64.
        let mut resident = vec![0u64; 4];
        resident[0] = !0u64 << 32 >> 32 << 32; // bits 32..64 set
        let r = t.drain(&resident);
        assert!(r.overflowed);
        assert_eq!(r.distinct_pages, 64);
        assert_eq!(r.pml_pages, 32 + 4);
        assert!(r.pml_pages <= r.distinct_pages);
    }

    #[test]
    fn bigger_log_cap_is_monotonically_better_under_eviction() {
        let mut last = 0u32;
        for cap in [1usize, 2, 4, 8, 16, 32, 64] {
            let mut t = EpochTracker::new(cap, 256);
            for p in 0..64u32 {
                t.note(p);
            }
            let resident = vec![0u64; 4]; // everything evicted
            let r = t.drain(&resident);
            assert!(r.pml_pages >= last, "cap {cap} regressed");
            assert!(r.pml_pages <= r.distinct_pages);
            last = r.pml_pages;
        }
    }
}
