//! Randomized property tests for the memory substrate, driven by the
//! deterministic simulation RNG (fixed seeds, so failures reproduce).

use agile_memory::{
    Eviction, LruLinks, LruList, PagemapEntry, SlotAllocator, Touch, VmMemory, VmMemoryConfig,
};
use agile_sim_core::DetRng;

/// A random guest access trace: (page, write).
fn trace(rng: &mut DetRng, pages: u32, max_len: usize) -> Vec<(u32, bool)> {
    let len = 1 + rng.index(max_len as u64) as usize;
    (0..len)
        .map(|_| (rng.index(pages as u64) as u32, rng.chance(0.5)))
        .collect()
}

/// Apply a trace, resolving faults immediately (a zero-latency device).
fn apply(mem: &mut VmMemory, trace: &[(u32, bool)]) -> Vec<Eviction> {
    let mut all = Vec::new();
    let mut evs = Vec::new();
    for &(pfn, write) in trace {
        match mem.touch(pfn, write) {
            Touch::Hit => {}
            Touch::MinorFault => mem.fault_in(pfn, write, &mut evs),
            Touch::MajorFault { .. } => {
                mem.begin_swap_in(pfn);
                mem.fault_in(pfn, write, &mut evs);
            }
            Touch::InFlight => unreachable!("no concurrency in this test"),
        }
        all.append(&mut evs);
    }
    all
}

/// Core residency invariant: the VM never exceeds its reservation, and
/// every page is in exactly one of {resident, swapped, untouched}.
#[test]
fn residency_never_exceeds_limit() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0x11ee * 7 + case);
        let limit = 1 + rng.index(31) as u32;
        let t = trace(&mut rng, 64, 400);
        let mut mem = VmMemory::new(VmMemoryConfig {
            pages: 64,
            page_size: 4096,
            limit_pages: limit,
        });
        apply(&mut mem, &t);
        assert!(mem.resident_pages() <= limit, "case {case}");
        mem.check_invariants();
        let mut resident = 0;
        let mut swapped = 0;
        for p in 0..64 {
            match mem.pagemap(p) {
                PagemapEntry::Present => resident += 1,
                PagemapEntry::Swapped { .. } => swapped += 1,
                PagemapEntry::None => {}
            }
        }
        assert_eq!(resident, mem.resident_pages(), "case {case}");
        assert_eq!(swapped, mem.swapped_pages(), "case {case}");
    }
}

/// Content versions: a page's version equals the number of writes it
/// received, regardless of how often it was evicted and faulted back.
#[test]
fn versions_count_writes_exactly() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0x22ee * 13 + case);
        let limit = 1 + rng.index(15) as u32;
        let t = trace(&mut rng, 32, 400);
        let mut mem = VmMemory::new(VmMemoryConfig {
            pages: 32,
            page_size: 4096,
            limit_pages: limit,
        });
        apply(&mut mem, &t);
        let mut writes = [0u32; 32];
        for &(p, w) in &t {
            if w {
                writes[p as usize] += 1;
            }
        }
        for p in 0..32u32 {
            assert_eq!(mem.version(p), writes[p as usize], "case {case} page {p}");
        }
    }
}

/// Swap slots are never shared by two pages.
#[test]
fn swap_slots_are_exclusive() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0x33ee * 17 + case);
        let limit = 1 + rng.index(15) as u32;
        let t = trace(&mut rng, 64, 400);
        let mut mem = VmMemory::new(VmMemoryConfig {
            pages: 64,
            page_size: 4096,
            limit_pages: limit,
        });
        apply(&mut mem, &t);
        let mut seen = std::collections::HashSet::new();
        for p in 0..64 {
            if let PagemapEntry::Swapped { slot } = mem.pagemap(p) {
                assert!(seen.insert(slot), "case {case}: slot {slot} shared");
            }
        }
    }
}

/// Clean drops never lose content — after re-faulting everything in,
/// versions still equal the write counts.
#[test]
fn clean_drops_preserve_content() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0x44ee * 19 + case);
        let limit = 2 + rng.index(6) as u32;
        let t = trace(&mut rng, 24, 400);
        let mut mem = VmMemory::new(VmMemoryConfig {
            pages: 24,
            page_size: 4096,
            limit_pages: limit,
        });
        apply(&mut mem, &t);
        let mut evs = Vec::new();
        mem.set_limit_pages(24, &mut evs);
        for p in 0..24u32 {
            if let Touch::MajorFault { .. } = mem.touch(p, false) {
                mem.begin_swap_in(p);
                mem.fault_in(p, false, &mut evs);
            }
        }
        let mut writes = [0u32; 24];
        for &(p, w) in &t {
            if w {
                writes[p as usize] += 1;
            }
        }
        for p in 0..24u32 {
            assert_eq!(mem.version(p), writes[p as usize], "case {case} page {p}");
        }
        mem.check_invariants();
    }
}

/// LRU list model check against a Vec<u32> reference.
#[test]
fn lru_matches_reference_model() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0x55ee * 23 + case);
        let n_ops = 1 + rng.index(200) as usize;
        let mut links = LruLinks::new(16);
        let mut list = LruList::new();
        let mut model: Vec<u32> = Vec::new(); // front = MRU
        for _ in 0..n_ops {
            let op = rng.index(4) as u8;
            let page = rng.index(16) as u32;
            match op {
                0 => {
                    // push_front if absent
                    if !model.contains(&page) {
                        list.push_front(&mut links, page);
                        model.insert(0, page);
                    }
                }
                1 => {
                    // remove if present
                    if let Some(pos) = model.iter().position(|&p| p == page) {
                        list.remove(&mut links, page);
                        model.remove(pos);
                    }
                }
                2 => {
                    // pop_back
                    let got = list.pop_back(&mut links);
                    let want = model.pop();
                    assert_eq!(got, want, "case {case}");
                }
                _ => {
                    // move_to_front if present
                    if let Some(pos) = model.iter().position(|&p| p == page) {
                        list.move_to_front(&mut links, page);
                        let v = model.remove(pos);
                        model.insert(0, v);
                    }
                }
            }
            assert_eq!(list.len() as usize, model.len(), "case {case}");
            let listed: Vec<u32> = list.iter(&links).collect();
            assert_eq!(&listed, &model, "case {case}");
            assert_eq!(list.front(), model.first().copied(), "case {case}");
            assert_eq!(list.back(), model.last().copied(), "case {case}");
        }
    }
}

/// Slot allocator: live count is exact and double allocation of the same
/// live slot never happens.
#[test]
fn slot_allocator_consistency() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0x66ee * 29 + case);
        let n_ops = 1 + rng.index(200) as usize;
        let mut a = SlotAllocator::unbounded();
        let mut live: Vec<u32> = Vec::new();
        for _ in 0..n_ops {
            if rng.chance(0.5) || live.is_empty() {
                let s = a.alloc().unwrap();
                assert!(!live.contains(&s), "case {case}: slot {s} double-allocated");
                live.push(s);
            } else {
                let s = live.swap_remove(live.len() / 2);
                a.free(s);
            }
            assert_eq!(a.live() as usize, live.len(), "case {case}");
        }
    }
}
