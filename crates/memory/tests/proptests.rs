//! Property-based tests for the memory substrate.

use agile_memory::{Eviction, LruLinks, LruList, PagemapEntry, SlotAllocator, Touch, VmMemory, VmMemoryConfig};
use proptest::prelude::*;

/// A random guest access trace: (page, write).
fn trace(pages: u32) -> impl Strategy<Value = Vec<(u32, bool)>> {
    proptest::collection::vec((0..pages, proptest::bool::ANY), 1..400)
}

/// Apply a trace, resolving faults immediately (a zero-latency device).
fn apply(mem: &mut VmMemory, trace: &[(u32, bool)]) -> Vec<Eviction> {
    let mut all = Vec::new();
    let mut evs = Vec::new();
    for &(pfn, write) in trace {
        match mem.touch(pfn, write) {
            Touch::Hit => {}
            Touch::MinorFault => mem.fault_in(pfn, write, &mut evs),
            Touch::MajorFault { .. } => {
                mem.begin_swap_in(pfn);
                mem.fault_in(pfn, write, &mut evs);
            }
            Touch::InFlight => unreachable!("no concurrency in this test"),
        }
        all.append(&mut evs);
    }
    all
}

proptest! {
    /// Core residency invariant: the VM never exceeds its reservation, and
    /// every page is in exactly one of {resident, swapped, untouched}.
    #[test]
    fn residency_never_exceeds_limit(t in trace(64), limit in 1u32..32) {
        let mut mem = VmMemory::new(VmMemoryConfig { pages: 64, page_size: 4096, limit_pages: limit });
        apply(&mut mem, &t);
        prop_assert!(mem.resident_pages() <= limit);
        mem.check_invariants();
        let mut resident = 0;
        let mut swapped = 0;
        for p in 0..64 {
            match mem.pagemap(p) {
                PagemapEntry::Present => resident += 1,
                PagemapEntry::Swapped { .. } => swapped += 1,
                PagemapEntry::None => {}
            }
        }
        prop_assert_eq!(resident, mem.resident_pages());
        prop_assert_eq!(swapped, mem.swapped_pages());
    }

    /// Content versions: a page's version equals the number of writes it
    /// received, regardless of how often it was evicted and faulted back.
    #[test]
    fn versions_count_writes_exactly(t in trace(32), limit in 1u32..16) {
        let mut mem = VmMemory::new(VmMemoryConfig { pages: 32, page_size: 4096, limit_pages: limit });
        apply(&mut mem, &t);
        let mut writes = [0u32; 32];
        for &(p, w) in &t {
            if w {
                writes[p as usize] += 1;
            }
        }
        for p in 0..32u32 {
            prop_assert_eq!(mem.version(p), writes[p as usize], "page {}", p);
        }
    }

    /// Swap slots are never shared by two pages.
    #[test]
    fn swap_slots_are_exclusive(t in trace(64), limit in 1u32..16) {
        let mut mem = VmMemory::new(VmMemoryConfig { pages: 64, page_size: 4096, limit_pages: limit });
        apply(&mut mem, &t);
        let mut seen = std::collections::HashSet::new();
        for p in 0..64 {
            if let PagemapEntry::Swapped { slot } = mem.pagemap(p) {
                prop_assert!(seen.insert(slot), "slot {} shared", slot);
            }
        }
    }

    /// Eviction records are consistent: a needs_write=false eviction can
    /// only happen for a page whose last fault-in was a swap-in with no
    /// intervening write (we verify the weaker invariant that clean drops
    /// never lose content — replay yields identical versions).
    #[test]
    fn clean_drops_preserve_content(t in trace(24), limit in 2u32..8) {
        let mut mem = VmMemory::new(VmMemoryConfig { pages: 24, page_size: 4096, limit_pages: limit });
        apply(&mut mem, &t);
        // Re-fault everything in with a large limit: versions must match
        // the write counts (i.e. nothing was lost by clean drops).
        let mut evs = Vec::new();
        mem.set_limit_pages(24, &mut evs);
        for p in 0..24u32 {
            if let Touch::MajorFault { .. } = mem.touch(p, false) {
                mem.begin_swap_in(p);
                mem.fault_in(p, false, &mut evs);
            }
        }
        let mut writes = [0u32; 24];
        for &(p, w) in &t {
            if w {
                writes[p as usize] += 1;
            }
        }
        for p in 0..24u32 {
            prop_assert_eq!(mem.version(p), writes[p as usize]);
        }
        mem.check_invariants();
    }

    /// LRU list model check against a Vec<u32> reference.
    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec((0u8..4, 0u32..16), 1..200)) {
        let mut links = LruLinks::new(16);
        let mut list = LruList::new();
        let mut model: Vec<u32> = Vec::new(); // front = MRU
        for (op, page) in ops {
            match op {
                0 => {
                    // push_front if absent
                    if !model.contains(&page) {
                        list.push_front(&mut links, page);
                        model.insert(0, page);
                    }
                }
                1 => {
                    // remove if present
                    if let Some(pos) = model.iter().position(|&p| p == page) {
                        list.remove(&mut links, page);
                        model.remove(pos);
                    }
                }
                2 => {
                    // pop_back
                    let got = list.pop_back(&mut links);
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
                _ => {
                    // move_to_front if present
                    if let Some(pos) = model.iter().position(|&p| p == page) {
                        list.move_to_front(&mut links, page);
                        let v = model.remove(pos);
                        model.insert(0, v);
                    }
                }
            }
            prop_assert_eq!(list.len() as usize, model.len());
            let listed: Vec<u32> = list.iter(&links).collect();
            prop_assert_eq!(&listed, &model);
            prop_assert_eq!(list.front(), model.first().copied());
            prop_assert_eq!(list.back(), model.last().copied());
        }
    }

    /// Slot allocator: live count is exact and double allocation of the
    /// same live slot never happens.
    #[test]
    fn slot_allocator_consistency(ops in proptest::collection::vec(proptest::bool::ANY, 1..200)) {
        let mut a = SlotAllocator::unbounded();
        let mut live: Vec<u32> = Vec::new();
        for alloc in ops {
            if alloc || live.is_empty() {
                let s = a.alloc().unwrap();
                prop_assert!(!live.contains(&s), "slot {} double-allocated", s);
                live.push(s);
            } else {
                let s = live.swap_remove(live.len() / 2);
                a.free(s);
            }
            prop_assert_eq!(a.live() as usize, live.len());
        }
    }
}
