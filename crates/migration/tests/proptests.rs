//! Randomized tests: bitmap algebra and protocol-session invariants under
//! arbitrary write/migration interleavings, driven by the deterministic
//! simulation RNG (fixed seeds, so failures reproduce).

use agile_memory::{PagemapEntry, VmMemory, VmMemoryConfig};
use agile_migration::{
    Bitmap, DestSession, SourceCmd, SourceConfig, SourceEvent, SourceSession, Technique,
};
use agile_sim_core::{DetRng, SimTime};

/// Bitmap against a reference BTreeSet model.
#[test]
fn bitmap_matches_set_model() {
    for case in 0..150u64 {
        let mut rng = DetRng::seed_from(0xb17 * 3 + case);
        let n_ops = 1 + rng.index(300) as usize;
        let mut b = Bitmap::zeros(200);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n_ops {
            let op = rng.index(3) as u8;
            let i = rng.index(200) as u32;
            match op {
                0 => {
                    let was = b.set(i);
                    assert_eq!(was, !model.insert(i), "case {case}");
                }
                1 => {
                    let was = b.clear(i);
                    assert_eq!(was, model.remove(&i), "case {case}");
                }
                _ => {
                    assert_eq!(b.get(i), model.contains(&i), "case {case}");
                }
            }
            assert_eq!(b.count_ones() as usize, model.len(), "case {case}");
        }
        let listed: Vec<u32> = b.iter_set().collect();
        let expect: Vec<u32> = model.into_iter().collect();
        assert_eq!(listed, expect, "case {case}");
    }
}

/// For ANY interleaving of guest writes with an Agile migration, the
/// protocol delivers the source's final content: run a migration with
/// writes injected between event steps and verify versions at the end.
#[test]
fn agile_protocol_never_loses_writes() {
    for case in 0..100u64 {
        let mut rng = DetRng::seed_from(0xa91e * 5 + case);
        let limit = 8 + rng.index(40) as u32;
        let n_writes = rng.index(60) as usize;
        let writes: Vec<(u32, u8)> = (0..n_writes)
            .map(|_| (rng.index(64) as u32, rng.index(8) as u8))
            .collect();
        let n_pages = 64u32;
        let mut src_mem = VmMemory::new(VmMemoryConfig {
            pages: n_pages,
            page_size: 4096,
            limit_pages: limit,
        });
        let mut evs = Vec::new();
        for p in 0..n_pages {
            src_mem.touch(p, true);
            src_mem.fault_in(p, true, &mut evs);
            evs.clear();
        }
        let mut dst_mem = VmMemory::new(VmMemoryConfig {
            pages: n_pages,
            page_size: 4096,
            limit_pages: n_pages,
        });
        let mut src = SourceSession::new(
            SourceConfig {
                chunk_pages: 8,
                ..SourceConfig::new(Technique::Agile)
            },
            n_pages,
            SimTime::ZERO,
        );
        let mut dst = DestSession::new(Technique::Agile, n_pages);

        // Drive the protocol; after every source step, apply the next
        // scripted guest write at the source (only while it still runs
        // there).
        let mut write_iter = writes.into_iter();
        let mut queue = vec![SourceEvent::Start];
        let mut suspended = false;
        let mut guard = 0;
        while let Some(ev) = queue.pop() {
            guard += 1;
            assert!(guard < 100_000, "case {case}: runaway protocol");
            let cmds = src.on_event(SimTime::ZERO, ev, &src_mem);
            for cmd in cmds {
                match cmd {
                    SourceCmd::SendChunk { chunk, .. } => {
                        dst.on_chunk(&chunk, &mut dst_mem, &mut evs);
                        evs.clear();
                        queue.push(SourceEvent::ChannelReady);
                    }
                    SourceCmd::SwapIn { batch, pages } => {
                        for (pfn, _) in pages {
                            if matches!(src_mem.pagemap(pfn), PagemapEntry::Swapped { .. }) {
                                src_mem.begin_swap_in(pfn);
                                src_mem.fault_in(pfn, false, &mut evs);
                                evs.clear();
                            }
                        }
                        queue.push(SourceEvent::SwapInDone { batch });
                    }
                    SourceCmd::Suspend => {
                        suspended = true;
                    }
                    SourceCmd::SendHandoff { .. } => {
                        let dirty = src.handoff_dirty().cloned().unwrap();
                        dst.on_handoff(dirty, &mut dst_mem);
                        queue.push(SourceEvent::HandoffDelivered);
                    }
                    SourceCmd::Done => {}
                }
            }
            if queue.is_empty() && !src.is_done() {
                queue.push(SourceEvent::ChannelReady);
            }
            // Guest write at the source while it still runs there.
            if !suspended {
                if let Some((pfn, reps)) = write_iter.next() {
                    for _ in 0..=reps {
                        match src_mem.touch(pfn, true) {
                            agile_memory::Touch::Hit => {}
                            agile_memory::Touch::MajorFault { .. } => {
                                src_mem.begin_swap_in(pfn);
                                src_mem.fault_in(pfn, true, &mut evs);
                                evs.clear();
                            }
                            agile_memory::Touch::MinorFault => {
                                src_mem.fault_in(pfn, true, &mut evs);
                                evs.clear();
                            }
                            agile_memory::Touch::InFlight => {}
                        }
                    }
                }
            }
        }
        assert!(src.is_done(), "case {case}");
        // Destination holds the source's final content: either the page
        // arrived in full (version equal) or it is tracked as swapped with
        // the right version recorded.
        for p in 0..n_pages {
            assert_eq!(
                dst_mem.version(p),
                src_mem.version(p),
                "case {case}: page {p} lost an update"
            );
        }
    }
}

/// Pre-copy under the same regime also converges and preserves content
/// (rounds are bounded by the config).
#[test]
fn precopy_protocol_never_loses_writes() {
    for case in 0..100u64 {
        let mut rng = DetRng::seed_from(0x9aec * 7 + case);
        let n_writes = rng.index(40) as usize;
        let writes: Vec<u32> = (0..n_writes).map(|_| rng.index(32) as u32).collect();
        let n_pages = 32u32;
        let mut src_mem = VmMemory::new(VmMemoryConfig {
            pages: n_pages,
            page_size: 4096,
            limit_pages: n_pages,
        });
        let mut evs = Vec::new();
        for p in 0..n_pages {
            src_mem.touch(p, true);
            src_mem.fault_in(p, true, &mut evs);
            evs.clear();
        }
        let mut dst_mem = VmMemory::new(VmMemoryConfig {
            pages: n_pages,
            page_size: 4096,
            limit_pages: n_pages,
        });
        let mut src = SourceSession::new(
            SourceConfig {
                chunk_pages: 4,
                precopy_threshold_pages: 2,
                precopy_max_rounds: 10,
                ..SourceConfig::new(Technique::PreCopy)
            },
            n_pages,
            SimTime::ZERO,
        );
        let mut dst = DestSession::new(Technique::PreCopy, n_pages);
        let mut write_iter = writes.into_iter();
        let mut suspended = false;
        let mut queue = vec![SourceEvent::Start];
        let mut guard = 0;
        while let Some(ev) = queue.pop() {
            guard += 1;
            assert!(guard < 100_000, "case {case}");
            let cmds = src.on_event(SimTime::ZERO, ev, &src_mem);
            for cmd in cmds {
                match cmd {
                    SourceCmd::SendChunk { chunk, .. } => {
                        dst.on_chunk(&chunk, &mut dst_mem, &mut evs);
                        evs.clear();
                        queue.push(SourceEvent::ChannelReady);
                    }
                    SourceCmd::SwapIn { batch, .. } => {
                        queue.push(SourceEvent::SwapInDone { batch });
                    }
                    SourceCmd::Suspend => suspended = true,
                    SourceCmd::SendHandoff { .. } => {
                        let dirty = src.handoff_dirty().cloned().unwrap();
                        dst.on_handoff(dirty, &mut dst_mem);
                        queue.push(SourceEvent::HandoffDelivered);
                    }
                    SourceCmd::Done => {}
                }
            }
            if queue.is_empty() && !src.is_done() {
                queue.push(SourceEvent::ChannelReady);
            }
            if !suspended {
                if let Some(pfn) = write_iter.next() {
                    src_mem.touch(pfn, true);
                }
            }
        }
        assert!(src.is_done(), "case {case}");
        for p in 0..n_pages {
            assert_eq!(
                dst_mem.version(p),
                src_mem.version(p),
                "case {case}: page {p}"
            );
        }
    }
}
