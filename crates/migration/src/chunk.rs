//! Transfer chunks — the unit the Migration Manager puts on its TCP
//! connection.
//!
//! A chunk batches up to `SourceConfig::chunk_pages` entries. Each entry is
//! one of:
//!
//! * a **full page** — header + page content (the common case);
//! * a **swap offset** — the `SWAPPED`-flag message of Agile migration:
//!   16 bytes instead of 4 KB (§IV-E);
//! * a **zero marker** — QEMU-style compressed all-zero page, 16 bytes.
//!
//! Versions ride along so the destination can record exactly which content
//! generation it installed (the simulation's stand-in for page bytes).

/// Per-page wire header (pfn + flags), matching QEMU's 8-byte page header
/// plus our version token.
pub const PAGE_ENTRY_HEADER: u64 = 16;
/// Wire cost of a swap-offset or zero-marker entry.
pub const MARKER_ENTRY_BYTES: u64 = 16;
/// Fixed per-chunk framing.
pub const CHUNK_HEADER: u64 = 64;

/// A full page being transferred.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FullPage {
    /// Guest page frame number.
    pub pfn: u32,
    /// Content version captured when the chunk was built.
    pub version: u32,
}

/// A swapped-page marker (Agile): page content stays on the per-VM swap
/// device; only the offset travels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SwappedMarker {
    /// Guest page frame number.
    pub pfn: u32,
    /// Slot on the per-VM swap device.
    pub slot: u32,
    /// Content version the slot holds.
    pub version: u32,
}

/// One chunk on the migration channel.
#[derive(Clone, Debug, Default)]
pub struct Chunk {
    /// Full pages carried.
    pub full: Vec<FullPage>,
    /// Swap-offset markers carried.
    pub swapped: Vec<SwappedMarker>,
    /// Zero-page markers carried.
    pub zero: Vec<u32>,
    /// How many of the entries re-send a page that was already shipped.
    /// Accounting only — retransmissions are ordinary entries on the wire,
    /// so this does not contribute to [`Chunk::wire_bytes`]. Carried on
    /// the chunk (not charged when recorded) so a chunk that is built but
    /// never emitted — stashed awaiting a swap-in, then dropped by an
    /// aborted attempt — never inflates the retransmission counter.
    pub retransmits: u32,
}

impl Chunk {
    /// True when the chunk carries nothing.
    pub fn is_empty(&self) -> bool {
        self.full.is_empty() && self.swapped.is_empty() && self.zero.is_empty()
    }

    /// Total page entries.
    pub fn entries(&self) -> usize {
        self.full.len() + self.swapped.len() + self.zero.len()
    }

    /// Bytes on the wire, given the page size.
    pub fn wire_bytes(&self, page_size: u64) -> u64 {
        CHUNK_HEADER
            + self.full.len() as u64 * (PAGE_ENTRY_HEADER + page_size)
            + self.swapped.len() as u64 * MARKER_ENTRY_BYTES
            + self.zero.len() as u64 * MARKER_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chunk() {
        let c = Chunk::default();
        assert!(c.is_empty());
        assert_eq!(c.entries(), 0);
        assert_eq!(c.wire_bytes(4096), CHUNK_HEADER);
    }

    #[test]
    fn wire_bytes_accounting() {
        let mut c = Chunk::default();
        c.full.push(FullPage { pfn: 1, version: 0 });
        c.full.push(FullPage { pfn: 2, version: 3 });
        c.swapped.push(SwappedMarker {
            pfn: 3,
            slot: 9,
            version: 1,
        });
        c.zero.push(4);
        assert_eq!(c.entries(), 4);
        assert_eq!(c.wire_bytes(4096), CHUNK_HEADER + 2 * (16 + 4096) + 16 + 16);
    }

    #[test]
    fn swapped_markers_are_tiny_compared_to_pages() {
        let mut full = Chunk::default();
        let mut agile = Chunk::default();
        for i in 0..256 {
            full.full.push(FullPage { pfn: i, version: 0 });
            agile.swapped.push(SwappedMarker {
                pfn: i,
                slot: i,
                version: 0,
            });
        }
        let ratio = full.wire_bytes(4096) as f64 / agile.wire_bytes(4096) as f64;
        assert!(ratio > 200.0, "marker savings ratio {ratio}");
    }
}
