//! Source-side Migration Manager.
//!
//! One state machine implements all three techniques (§II, §III); the
//! [`Technique`] selects the policy at the three decision points:
//!
//! | decision            | pre-copy              | post-copy          | Agile                  |
//! |---------------------|-----------------------|--------------------|------------------------|
//! | live rounds         | until convergence     | none               | exactly one            |
//! | swapped-out pages   | swap in, send full    | swap in, send full | send 16-byte offset    |
//! | after suspension    | stop-and-copy rest    | push **all** pages | push **dirty** pages   |
//!
//! The session is sans-IO: the cluster executor feeds it [`SourceEvent`]s
//! (channel has room, swap-in finished, demand request arrived) together
//! with the VM's [`VmMemory`], and receives [`SourceCmd`]s (send this
//! chunk, issue these swap-ins, suspend the VM, ...). Dirty tracking uses
//! content versions: the session records the version it shipped for every
//! page; a page is dirty iff its current version differs — an exact
//! stand-in for the KVM dirty log.

use std::collections::HashMap;

use agile_memory::{PagemapEntry, VmMemory};
use agile_sim_core::SimTime;

use agile_trace::PhaseKind;

use crate::bitmap::Bitmap;
use crate::chunk::{Chunk, FullPage, SwappedMarker};
use crate::metrics::{MigrationMetrics, Technique};

/// Configuration of a source migration session.
#[derive(Clone, Copy, Debug)]
pub struct SourceConfig {
    /// Technique to run.
    pub technique: Technique,
    /// Pages per transfer chunk.
    pub chunk_pages: u32,
    /// Pre-copy convergence: suspend when the dirty set is at most this
    /// many pages (QEMU derives this from the downtime target × estimated
    /// bandwidth; ~300 ms at 1 Gbps ≈ 9 k pages).
    pub precopy_threshold_pages: u32,
    /// Pre-copy round cap (the dirty set may never converge).
    pub precopy_max_rounds: u32,
    /// CPU + device state bytes in the handoff message.
    pub handoff_base_bytes: u64,
    /// Guest page size (for wire-byte accounting).
    pub page_size: u64,
}

impl SourceConfig {
    /// Defaults for a technique.
    pub fn new(technique: Technique) -> Self {
        SourceConfig {
            technique,
            chunk_pages: 256,
            precopy_threshold_pages: 9_000,
            precopy_max_rounds: 30,
            handoff_base_bytes: 512 * 1024,
            page_size: 4096,
        }
    }
}

/// Inputs to the session.
#[derive(Clone, Debug)]
pub enum SourceEvent {
    /// Begin the migration.
    Start,
    /// The migration channel can accept another chunk.
    ChannelReady,
    /// A previously requested swap-in batch completed (the pages are now
    /// resident, barring re-eviction).
    SwapInDone {
        /// Batch id from the [`SourceCmd::SwapIn`].
        batch: u64,
    },
    /// The handoff message was delivered (the destination has resumed, or
    /// for pre-copy, taken over).
    HandoffDelivered,
    /// The destination demand-requested a page.
    DemandRequest {
        /// Faulted guest page.
        pfn: u32,
    },
}

/// Outputs of the session, executed by the cluster executor.
#[derive(Clone, Debug)]
pub enum SourceCmd {
    /// Put a chunk on the migration channel. Priority chunks answer demand
    /// faults and travel on the dedicated demand channel.
    SendChunk {
        /// The chunk.
        chunk: Chunk,
        /// Demand-response priority.
        priority: bool,
    },
    /// Swap these `(pfn, slot)` pages into memory (they are needed for
    /// transfer). Report back with [`SourceEvent::SwapInDone`].
    SwapIn {
        /// Batch id echoed in the completion event.
        batch: u64,
        /// Pages to read.
        pages: Vec<(u32, u32)>,
    },
    /// Suspend the VM (downtime begins).
    Suspend,
    /// Send the CPU-state + dirty-bitmap handoff message.
    SendHandoff {
        /// Bytes on the wire.
        wire_bytes: u64,
    },
    /// Everything this source must send has been queued; once the channel
    /// drains, the source VM's memory can be freed.
    Done,
}

#[derive(Clone, Debug, PartialEq)]
enum Phase {
    Idle,
    /// Live pre-copy round. `bitmap` is `None` for round 1 (all pages).
    LiveRound {
        round: u32,
        cursor: u32,
    },
    /// Pre-copy stop-and-copy: VM suspended, draining the dirty set.
    StopAndCopy {
        cursor: u32,
    },
    /// Handoff queued; awaiting delivery confirmation.
    AwaitHandoff,
    /// Post-copy phase: pushing the remaining set, serving demand.
    Push {
        cursor: u32,
    },
    Done,
}

/// `(pfn, slot)` pairs the Migration Manager must swap in.
type SwapInPages = Vec<(u32, u32)>;

/// Outcome of building one chunk.
enum Build {
    Ready(Chunk),
    NeedsSwapIn { pages: SwapInPages, chunk: Chunk },
    EndOfPass(Chunk),
}

/// Source-side migration session.
#[derive(Clone, Debug)]
pub struct SourceSession {
    cfg: SourceConfig,
    phase: Phase,
    metrics: MigrationMetrics,
    /// Version shipped per page (parallel to guest pages).
    sent_version: Vec<u32>,
    /// Whether any entry was ever shipped for the page (round 1 coverage).
    shipped: Bitmap,
    /// Pass bitmap: pages remaining in the current round / stop-and-copy /
    /// push set. `None` during round 1 (implicit all-ones).
    pass_set: Option<Bitmap>,
    /// Stashed chunk awaiting a swap-in batch.
    stash: Option<(u64, Chunk, SwapInPages)>,
    /// Demand requests awaiting a swap-in, by batch id.
    demand_swapins: HashMap<u64, u32>,
    next_batch: u64,
    n_pages: u32,
}

impl SourceSession {
    /// Create a session for a VM with `n_pages` guest pages.
    pub fn new(cfg: SourceConfig, n_pages: u32, started_at: SimTime) -> Self {
        SourceSession {
            cfg,
            phase: Phase::Idle,
            metrics: MigrationMetrics::new(cfg.technique, started_at),
            sent_version: vec![0; n_pages as usize],
            shipped: Bitmap::zeros(n_pages),
            pass_set: None,
            stash: None,
            demand_swapins: HashMap::new(),
            next_batch: 0,
            n_pages,
        }
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &MigrationMetrics {
        &self.metrics
    }

    /// Metrics, mutable (the executor stamps delivery-side timestamps).
    pub fn metrics_mut(&mut self) -> &mut MigrationMetrics {
        &mut self.metrics
    }

    /// True once [`SourceCmd::Done`] has been emitted.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Pages remaining in the current pass (diagnostics).
    pub fn remaining_in_pass(&self) -> u32 {
        match &self.pass_set {
            Some(b) => b.count_ones(),
            None => self.n_pages,
        }
    }

    /// True before `Start` (or after [`SourceSession::reset_for_retry`]).
    pub fn is_idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    /// True once the CPU handoff has been queued or delivered. Past this
    /// point the destination may resume at any moment, so a dropped
    /// connection can no longer be handled by rolling back to the source —
    /// the executor must keep the destination running on demand paging.
    pub fn handoff_committed(&self) -> bool {
        matches!(
            self.phase,
            Phase::AwaitHandoff | Phase::Push { .. } | Phase::Done
        )
    }

    /// Abort the current attempt (the migration connection dropped before
    /// the destination resumed): forget all per-attempt transfer progress
    /// so `Start` can run again against a fresh destination session.
    /// Cumulative metrics survive — bytes wasted by the failed attempt
    /// were really sent. Batch ids keep counting up so swap-ins still in
    /// flight from the aborted attempt can never collide with the retry's.
    /// A stashed chunk (built, awaiting swap-ins, never emitted) is simply
    /// dropped: none of its entries were charged to the metrics, so the
    /// abort leaves no phantom retransmissions behind.
    pub fn reset_for_retry(&mut self, now: SimTime) {
        self.metrics.record_phase(now, PhaseKind::Aborted, 0);
        self.phase = Phase::Idle;
        self.sent_version.iter_mut().for_each(|v| *v = 0);
        self.shipped = Bitmap::zeros(self.n_pages);
        self.pass_set = None;
        self.stash = None;
        self.demand_swapins.clear();
    }

    /// Drive the state machine.
    pub fn on_event(&mut self, now: SimTime, ev: SourceEvent, mem: &VmMemory) -> Vec<SourceCmd> {
        match ev {
            SourceEvent::Start => self.start(now, mem),
            SourceEvent::ChannelReady => self.channel_ready(now, mem),
            SourceEvent::SwapInDone { batch } => self.swap_in_done(now, batch, mem),
            SourceEvent::HandoffDelivered => self.handoff_delivered(now),
            SourceEvent::DemandRequest { pfn } => self.demand(now, pfn, mem),
        }
    }

    fn start(&mut self, now: SimTime, mem: &VmMemory) -> Vec<SourceCmd> {
        assert_eq!(self.phase, Phase::Idle, "session already started");
        match self.cfg.technique {
            Technique::PreCopy | Technique::Agile => {
                self.phase = Phase::LiveRound {
                    round: 1,
                    cursor: 0,
                };
                self.metrics.record_phase(now, PhaseKind::LiveRound, 1);
                self.channel_ready(now, mem)
            }
            Technique::PostCopy => {
                // Suspend immediately; everything comes from the source
                // afterwards.
                self.metrics.suspended_at = Some(now);
                self.pass_set = Some(Bitmap::ones(self.n_pages));
                self.metrics.push_set_pages = u64::from(self.n_pages);
                self.phase = Phase::AwaitHandoff;
                let wire = self.cfg.handoff_base_bytes + Bitmap::zeros(self.n_pages).wire_bytes();
                self.metrics.migration_bytes += wire;
                self.metrics.record_phase(now, PhaseKind::AwaitHandoff, 0);
                vec![
                    SourceCmd::Suspend,
                    SourceCmd::SendHandoff { wire_bytes: wire },
                ]
            }
        }
    }

    fn channel_ready(&mut self, now: SimTime, mem: &VmMemory) -> Vec<SourceCmd> {
        if self.stash.is_some() {
            return Vec::new(); // waiting on swap-ins; nothing to add yet
        }
        match self.phase {
            Phase::LiveRound { round, cursor } => {
                match self.build_chunk(cursor, mem, /*live*/ true) {
                    Build::Ready(chunk) => {
                        let next = self.advance_cursor(&chunk);
                        self.phase = Phase::LiveRound {
                            round,
                            cursor: next,
                        };
                        self.emit_chunk(chunk, false)
                    }
                    Build::NeedsSwapIn { pages, chunk } => {
                        let next = self
                            .advance_cursor(&chunk)
                            .max(pages.iter().map(|(p, _)| p + 1).max().unwrap_or(0));
                        self.phase = Phase::LiveRound {
                            round,
                            cursor: next,
                        };
                        self.request_swapin(pages, chunk)
                    }
                    Build::EndOfPass(chunk) => {
                        let mut cmds = if chunk.is_empty() {
                            Vec::new()
                        } else {
                            self.emit_chunk(chunk, false)
                        };
                        cmds.extend(self.end_of_round(now, round, mem));
                        cmds
                    }
                }
            }
            Phase::StopAndCopy { cursor } => {
                match self.build_chunk(cursor, mem, false) {
                    Build::Ready(chunk) => {
                        let next = self.advance_cursor(&chunk);
                        self.phase = Phase::StopAndCopy { cursor: next };
                        self.emit_chunk(chunk, false)
                    }
                    Build::NeedsSwapIn { pages, chunk } => {
                        let next = self
                            .advance_cursor(&chunk)
                            .max(pages.iter().map(|(p, _)| p + 1).max().unwrap_or(0));
                        self.phase = Phase::StopAndCopy { cursor: next };
                        self.request_swapin(pages, chunk)
                    }
                    Build::EndOfPass(chunk) => {
                        let mut cmds = if chunk.is_empty() {
                            Vec::new()
                        } else {
                            self.emit_chunk(chunk, false)
                        };
                        // All dirty state sent; hand off CPU state.
                        self.phase = Phase::AwaitHandoff;
                        let wire = self.cfg.handoff_base_bytes;
                        self.metrics.migration_bytes += wire;
                        self.metrics.record_phase(now, PhaseKind::AwaitHandoff, 0);
                        cmds.push(SourceCmd::SendHandoff { wire_bytes: wire });
                        cmds
                    }
                }
            }
            Phase::Push { cursor } => match self.build_chunk(cursor, mem, false) {
                Build::Ready(chunk) => {
                    let next = self.advance_cursor(&chunk);
                    self.phase = Phase::Push { cursor: next };
                    self.emit_chunk(chunk, false)
                }
                Build::NeedsSwapIn { pages, chunk } => {
                    let next = self
                        .advance_cursor(&chunk)
                        .max(pages.iter().map(|(p, _)| p + 1).max().unwrap_or(0));
                    self.phase = Phase::Push { cursor: next };
                    self.request_swapin(pages, chunk)
                }
                Build::EndOfPass(chunk) => {
                    let mut cmds = if chunk.is_empty() {
                        Vec::new()
                    } else {
                        self.emit_chunk(chunk, false)
                    };
                    if self.demand_swapins.is_empty() {
                        self.phase = Phase::Done;
                        self.metrics.record_phase(now, PhaseKind::Done, 0);
                        cmds.push(SourceCmd::Done);
                    }
                    cmds
                }
            },
            Phase::AwaitHandoff | Phase::Idle | Phase::Done => Vec::new(),
        }
    }

    /// Advance the pass cursor past every page the chunk covered.
    fn advance_cursor(&self, chunk: &Chunk) -> u32 {
        chunk
            .full
            .iter()
            .map(|f| f.pfn + 1)
            .chain(chunk.swapped.iter().map(|s| s.pfn + 1))
            .chain(chunk.zero.iter().map(|z| z + 1))
            .max()
            .unwrap_or(0)
    }

    /// Build the next chunk from `cursor` within the current pass.
    /// `live` selects the live-round policy (Agile sends markers for
    /// swapped pages only during the live round).
    fn build_chunk(&mut self, cursor: u32, mem: &VmMemory, live: bool) -> Build {
        let agile_markers = live && self.cfg.technique == Technique::Agile;
        let mut chunk = Chunk::default();
        let mut swapins: Vec<(u32, u32)> = Vec::new();
        let mut pfn = cursor;
        let budget = self.cfg.chunk_pages as usize;
        loop {
            // Next page in the pass.
            let next = match &self.pass_set {
                Some(b) => b.next_set(pfn),
                None => (pfn < self.n_pages).then_some(pfn),
            };
            let Some(p) = next else {
                return if swapins.is_empty() {
                    Build::EndOfPass(chunk)
                } else {
                    Build::NeedsSwapIn {
                        pages: swapins,
                        chunk,
                    }
                };
            };
            if chunk.entries() + swapins.len() >= budget {
                return if swapins.is_empty() {
                    Build::Ready(chunk)
                } else {
                    Build::NeedsSwapIn {
                        pages: swapins,
                        chunk,
                    }
                };
            }
            self.take_from_pass(p);
            match mem.pagemap(p) {
                PagemapEntry::Present => {
                    let v = mem.version(p);
                    chunk.retransmits += u32::from(self.note_sent(p, v));
                    chunk.full.push(FullPage { pfn: p, version: v });
                }
                PagemapEntry::Swapped { slot } => {
                    if agile_markers {
                        let v = mem.version(p);
                        chunk.retransmits += u32::from(self.note_sent(p, v));
                        chunk.swapped.push(SwappedMarker {
                            pfn: p,
                            slot,
                            version: v,
                        });
                    } else {
                        swapins.push((p, slot));
                    }
                }
                PagemapEntry::None => {
                    chunk.retransmits += u32::from(self.note_sent(p, mem.version(p)));
                    chunk.zero.push(p);
                }
            }
            pfn = p + 1;
        }
    }

    fn take_from_pass(&mut self, pfn: u32) {
        if let Some(b) = &mut self.pass_set {
            b.clear(pfn);
        }
    }

    /// Mark `pfn` as shipped at `version`. Returns whether this re-sends a
    /// page that already shipped — the caller records that on the chunk
    /// being built ([`Chunk::retransmits`]), and the count is only charged
    /// to the metrics when the chunk is actually emitted. Charging here,
    /// at build time, double-counted retransmissions whenever a stashed
    /// chunk died with an aborted attempt.
    #[must_use]
    fn note_sent(&mut self, pfn: u32, version: u32) -> bool {
        let retransmit = self.shipped.get(pfn);
        self.shipped.set(pfn);
        self.sent_version[pfn as usize] = version;
        retransmit
    }

    fn emit_chunk(&mut self, chunk: Chunk, priority: bool) -> Vec<SourceCmd> {
        self.metrics.pages_sent_full += chunk.full.len() as u64;
        self.metrics.pages_sent_as_offsets += chunk.swapped.len() as u64;
        self.metrics.pages_sent_zero += chunk.zero.len() as u64;
        self.metrics.pages_retransmitted += u64::from(chunk.retransmits);
        // Wire bytes are charged by the executor via chunk.wire_bytes();
        // we account them here so metrics don't depend on the executor.
        self.metrics.migration_bytes += chunk.wire_bytes(self.cfg.page_size);
        vec![SourceCmd::SendChunk { chunk, priority }]
    }

    fn request_swapin(&mut self, pages: Vec<(u32, u32)>, chunk: Chunk) -> Vec<SourceCmd> {
        let batch = self.next_batch;
        self.next_batch += 1;
        self.metrics.pages_swapped_in_for_transfer += pages.len() as u64;
        self.stash = Some((batch, chunk, pages.clone()));
        vec![SourceCmd::SwapIn { batch, pages }]
    }

    fn swap_in_done(&mut self, now: SimTime, batch: u64, mem: &VmMemory) -> Vec<SourceCmd> {
        // Demand-fault swap-in?
        if let Some(pfn) = self.demand_swapins.remove(&batch) {
            let mut cmds = self.send_demand_page(pfn, mem);
            // Push pass may have been exhausted while this demand was in
            // flight; re-check completion.
            if matches!(self.phase, Phase::Push { .. }) {
                cmds.extend(self.channel_ready(now, mem));
            }
            return cmds;
        }
        let (b, mut chunk, pages) = self.stash.take().expect("unexpected SwapInDone");
        assert_eq!(b, batch, "swap-in batches complete in order");
        let mut still_swapped: Vec<(u32, u32)> = Vec::new();
        for (pfn, _slot) in pages {
            match mem.pagemap(pfn) {
                PagemapEntry::Present => {
                    let v = mem.version(pfn);
                    chunk.retransmits += u32::from(self.note_sent(pfn, v));
                    chunk.full.push(FullPage { pfn, version: v });
                }
                // Re-evicted between completion and this call, or the slot
                // moved: retry.
                PagemapEntry::Swapped { slot } => still_swapped.push((pfn, slot)),
                PagemapEntry::None => {
                    chunk.retransmits += u32::from(self.note_sent(pfn, mem.version(pfn)));
                    chunk.zero.push(pfn);
                }
            }
        }
        if !still_swapped.is_empty() {
            return self.request_swapin(still_swapped, chunk);
        }
        self.emit_chunk(chunk, false)
    }

    fn end_of_round(&mut self, now: SimTime, round: u32, mem: &VmMemory) -> Vec<SourceCmd> {
        self.metrics.rounds = round;
        match self.cfg.technique {
            Technique::Agile => self.suspend_and_handoff(now, mem),
            Technique::PreCopy => {
                let dirty = self.dirty_bitmap(mem);
                let n_dirty = dirty.count_ones();
                if n_dirty <= self.cfg.precopy_threshold_pages
                    || round >= self.cfg.precopy_max_rounds
                {
                    // Converged (or gave up): stop and copy.
                    self.metrics.suspended_at = Some(now);
                    self.metrics.push_set_pages = u64::from(n_dirty);
                    self.pass_set = Some(dirty);
                    self.phase = Phase::StopAndCopy { cursor: 0 };
                    self.metrics.record_phase(now, PhaseKind::StopAndCopy, 0);
                    let mut cmds = vec![SourceCmd::Suspend];
                    cmds.extend(self.channel_ready(now, mem));
                    cmds
                } else {
                    self.pass_set = Some(dirty);
                    self.phase = Phase::LiveRound {
                        round: round + 1,
                        cursor: 0,
                    };
                    self.metrics
                        .record_phase(now, PhaseKind::LiveRound, round + 1);
                    self.channel_ready(now, mem)
                }
            }
            Technique::PostCopy => unreachable!("post-copy has no live rounds"),
        }
    }

    fn suspend_and_handoff(&mut self, now: SimTime, mem: &VmMemory) -> Vec<SourceCmd> {
        self.metrics.suspended_at = Some(now);
        let dirty = self.dirty_bitmap(mem);
        let wire = self.cfg.handoff_base_bytes + dirty.wire_bytes();
        self.metrics.migration_bytes += wire;
        self.metrics.push_set_pages = u64::from(dirty.count_ones());
        self.pass_set = Some(dirty);
        self.phase = Phase::AwaitHandoff;
        self.metrics.record_phase(now, PhaseKind::AwaitHandoff, 0);
        vec![
            SourceCmd::Suspend,
            SourceCmd::SendHandoff { wire_bytes: wire },
        ]
    }

    /// Pages whose content changed since we last shipped an entry for them,
    /// compared 64 pages per output word.
    fn dirty_bitmap(&self, mem: &VmMemory) -> Bitmap {
        Bitmap::diff_u32(mem.versions(), &self.sent_version)
    }

    /// The dirty bitmap that travels in the handoff (destination needs it
    /// to classify faults). Valid after suspension.
    pub fn handoff_dirty(&self) -> Option<&Bitmap> {
        match self.phase {
            Phase::AwaitHandoff | Phase::Push { .. } | Phase::Done => self.pass_set.as_ref(),
            Phase::StopAndCopy { .. } => self.pass_set.as_ref(),
            _ => None,
        }
    }

    fn handoff_delivered(&mut self, now: SimTime) -> Vec<SourceCmd> {
        assert_eq!(self.phase, Phase::AwaitHandoff);
        self.metrics.resumed_at = Some(now);
        match self.cfg.technique {
            Technique::PreCopy => {
                // Everything already arrived (FIFO channel): done.
                self.phase = Phase::Done;
                self.metrics.record_phase(now, PhaseKind::Done, 0);
                vec![SourceCmd::Done]
            }
            Technique::PostCopy | Technique::Agile => {
                self.phase = Phase::Push { cursor: 0 };
                self.metrics.record_phase(now, PhaseKind::Push, 0);
                Vec::new() // executor follows with ChannelReady
            }
        }
    }

    fn demand(&mut self, _now: SimTime, pfn: u32, mem: &VmMemory) -> Vec<SourceCmd> {
        let in_pass = match &self.pass_set {
            Some(b) => b.get(pfn),
            None => false,
        };
        if !in_pass {
            // Already sent (possibly in flight) or being swapped in for a
            // stashed chunk; the destination will receive it.
            return Vec::new();
        }
        match mem.pagemap(pfn) {
            PagemapEntry::Present => {
                self.take_from_pass(pfn);
                self.metrics.pages_demand_from_source += 1;
                self.send_demand_page_known_present(pfn, mem)
            }
            PagemapEntry::Swapped { slot } => {
                self.take_from_pass(pfn);
                self.metrics.pages_demand_from_source += 1;
                self.metrics.pages_swapped_in_for_transfer += 1;
                let batch = self.next_batch;
                self.next_batch += 1;
                self.demand_swapins.insert(batch, pfn);
                vec![SourceCmd::SwapIn {
                    batch,
                    pages: vec![(pfn, slot)],
                }]
            }
            PagemapEntry::None => {
                self.take_from_pass(pfn);
                let mut chunk = Chunk::default();
                chunk.retransmits += u32::from(self.note_sent(pfn, mem.version(pfn)));
                chunk.zero.push(pfn);
                self.emit_priority(chunk)
            }
        }
    }

    fn send_demand_page(&mut self, pfn: u32, mem: &VmMemory) -> Vec<SourceCmd> {
        match mem.pagemap(pfn) {
            PagemapEntry::Present => self.send_demand_page_known_present(pfn, mem),
            PagemapEntry::Swapped { slot } => {
                // Evicted again before we could send it: retry the swap-in.
                let batch = self.next_batch;
                self.next_batch += 1;
                self.demand_swapins.insert(batch, pfn);
                vec![SourceCmd::SwapIn {
                    batch,
                    pages: vec![(pfn, slot)],
                }]
            }
            PagemapEntry::None => {
                let mut chunk = Chunk::default();
                chunk.retransmits += u32::from(self.note_sent(pfn, mem.version(pfn)));
                chunk.zero.push(pfn);
                self.emit_priority(chunk)
            }
        }
    }

    fn send_demand_page_known_present(&mut self, pfn: u32, mem: &VmMemory) -> Vec<SourceCmd> {
        let v = mem.version(pfn);
        let mut chunk = Chunk::default();
        chunk.retransmits += u32::from(self.note_sent(pfn, v));
        chunk.full.push(FullPage { pfn, version: v });
        self.emit_priority(chunk)
    }

    fn emit_priority(&mut self, chunk: Chunk) -> Vec<SourceCmd> {
        self.metrics.pages_sent_full += chunk.full.len() as u64;
        self.metrics.pages_sent_zero += chunk.zero.len() as u64;
        self.metrics.pages_retransmitted += u64::from(chunk.retransmits);
        self.metrics.migration_bytes += chunk.wire_bytes(self.cfg.page_size);
        vec![SourceCmd::SendChunk {
            chunk,
            priority: true,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_memory::VmMemoryConfig;

    /// A 32-page VM with pages 0..16 populated, of which 16.. limit forces
    /// 0..8 swapped out when limit = 8.
    fn fixture(limit: u32) -> VmMemory {
        let mut mem = VmMemory::new(VmMemoryConfig {
            pages: 32,
            page_size: 4096,
            limit_pages: limit,
        });
        let mut evs = Vec::new();
        for p in 0..16 {
            mem.touch(p, true);
            mem.fault_in(p, true, &mut evs);
        }
        mem
    }

    fn drive_until_quiet(
        s: &mut SourceSession,
        mem: &mut VmMemory,
        now: SimTime,
    ) -> Vec<SourceCmd> {
        let mut all = Vec::new();
        let mut queue = vec![SourceEvent::Start];
        let mut guard = 0;
        while let Some(ev) = queue.pop() {
            guard += 1;
            assert!(guard < 10_000, "runaway session");
            let cmds = s.on_event(now, ev, mem);
            for cmd in cmds {
                match &cmd {
                    SourceCmd::SendChunk { .. } => queue.push(SourceEvent::ChannelReady),
                    SourceCmd::SwapIn { batch, pages } => {
                        // Immediately "complete" the swap-ins.
                        let mut evs = Vec::new();
                        for (pfn, _) in pages {
                            if matches!(mem.pagemap(*pfn), PagemapEntry::Swapped { .. }) {
                                mem.begin_swap_in(*pfn);
                                mem.fault_in(*pfn, false, &mut evs);
                            }
                        }
                        queue.push(SourceEvent::SwapInDone { batch: *batch });
                    }
                    SourceCmd::SendHandoff { .. } => {
                        queue.push(SourceEvent::HandoffDelivered);
                    }
                    SourceCmd::Suspend | SourceCmd::Done => {}
                }
                all.push(cmd);
            }
            if queue.is_empty() && !s.is_done() && matches!(s.phase, Phase::Push { .. }) {
                queue.push(SourceEvent::ChannelReady);
            }
        }
        all
    }

    fn count_full(cmds: &[SourceCmd]) -> usize {
        cmds.iter()
            .filter_map(|c| match c {
                SourceCmd::SendChunk { chunk, .. } => Some(chunk.full.len()),
                _ => None,
            })
            .sum()
    }

    fn count_markers(cmds: &[SourceCmd]) -> usize {
        cmds.iter()
            .filter_map(|c| match c {
                SourceCmd::SendChunk { chunk, .. } => Some(chunk.swapped.len()),
                _ => None,
            })
            .sum()
    }

    fn count_zero(cmds: &[SourceCmd]) -> usize {
        cmds.iter()
            .filter_map(|c| match c {
                SourceCmd::SendChunk { chunk, .. } => Some(chunk.zero.len()),
                _ => None,
            })
            .sum()
    }

    #[test]
    fn reset_for_retry_allows_a_clean_second_attempt() {
        let mut mem = fixture(32);
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 8,
                ..SourceConfig::new(Technique::Agile)
            },
            32,
            SimTime::ZERO,
        );
        // First attempt: start, move a chunk or two, then the connection
        // drops before the handoff.
        s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        s.on_event(SimTime::ZERO, SourceEvent::ChannelReady, &mem);
        assert!(!s.is_idle());
        assert!(!s.handoff_committed());
        s.reset_for_retry(SimTime::ZERO);
        assert!(s.is_idle());
        // Second attempt runs to completion from scratch: the full
        // populated set ships again (the aborted destination was thrown
        // away), then the handoff commits.
        let cmds = drive_until_quiet(&mut s, &mut mem, SimTime::ZERO);
        assert!(s.is_done());
        assert!(s.handoff_committed());
        assert_eq!(count_full(&cmds), 16, "retry re-covers every page");
        assert_eq!(count_zero(&cmds), 16);
    }

    #[test]
    fn precopy_idle_vm_sends_everything_once() {
        let mut mem = fixture(32); // nothing swapped
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 8,
                ..SourceConfig::new(Technique::PreCopy)
            },
            32,
            SimTime::ZERO,
        );
        let cmds = drive_until_quiet(&mut s, &mut mem, SimTime::ZERO);
        assert!(s.is_done());
        assert_eq!(count_full(&cmds), 16, "populated pages sent full");
        assert_eq!(count_zero(&cmds), 16, "untouched pages sent as zeros");
        assert_eq!(count_markers(&cmds), 0, "pre-copy never sends offsets");
        assert_eq!(s.metrics().rounds, 1);
        assert!(s.metrics().suspended_at.is_some());
    }

    #[test]
    fn precopy_swapped_pages_are_swapped_in_and_sent_full() {
        let mut mem = fixture(8); // 8 of the 16 populated pages swapped out
        assert_eq!(mem.swapped_pages(), 8);
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 8,
                ..SourceConfig::new(Technique::PreCopy)
            },
            32,
            SimTime::ZERO,
        );
        let cmds = drive_until_quiet(&mut s, &mut mem, SimTime::ZERO);
        assert!(s.is_done());
        assert_eq!(count_full(&cmds), 16);
        // Migration-induced thrashing (§V-B): swapping in the 8 cold pages
        // evicts the 8 resident not-yet-sent pages, which then need their
        // own swap-ins — the Migration Manager ends up reading *more* pages
        // from swap than were originally swapped out.
        assert!(
            s.metrics().pages_swapped_in_for_transfer >= 8,
            "got {}",
            s.metrics().pages_swapped_in_for_transfer
        );
        assert_eq!(count_markers(&cmds), 0);
    }

    #[test]
    fn agile_sends_offsets_for_swapped_pages() {
        let mut mem = fixture(8);
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 8,
                ..SourceConfig::new(Technique::Agile)
            },
            32,
            SimTime::ZERO,
        );
        let cmds = drive_until_quiet(&mut s, &mut mem, SimTime::ZERO);
        assert!(s.is_done());
        assert_eq!(count_full(&cmds), 8, "only resident pages travel in full");
        assert_eq!(count_markers(&cmds), 8, "swapped pages travel as offsets");
        assert_eq!(
            s.metrics().pages_swapped_in_for_transfer,
            0,
            "agile never touches the swap device for transfer"
        );
        assert_eq!(s.metrics().rounds, 1, "exactly one live round");
    }

    #[test]
    fn agile_bytes_much_smaller_than_precopy_under_swap() {
        let mut mem_a = fixture(8);
        let mut mem_p = fixture(8);
        let mut agile = SourceSession::new(SourceConfig::new(Technique::Agile), 32, SimTime::ZERO);
        let mut pre = SourceSession::new(SourceConfig::new(Technique::PreCopy), 32, SimTime::ZERO);
        drive_until_quiet(&mut agile, &mut mem_a, SimTime::ZERO);
        drive_until_quiet(&mut pre, &mut mem_p, SimTime::ZERO);
        assert!(
            agile.metrics().migration_bytes < pre.metrics().migration_bytes,
            "agile {} >= precopy {}",
            agile.metrics().migration_bytes,
            pre.metrics().migration_bytes
        );
    }

    #[test]
    fn postcopy_suspends_immediately_then_pushes_all() {
        let mem = fixture(32);
        let mut s = SourceSession::new(SourceConfig::new(Technique::PostCopy), 32, SimTime::ZERO);
        let first = s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        assert!(matches!(first[0], SourceCmd::Suspend));
        assert!(matches!(first[1], SourceCmd::SendHandoff { .. }));
        assert_eq!(s.metrics().rounds, 0);
        let cmds = {
            // Continue driving manually from the handoff.
            let mut all = Vec::new();
            let mut queue = vec![SourceEvent::HandoffDelivered];
            while let Some(ev) = queue.pop() {
                for cmd in s.on_event(SimTime::ZERO, ev, &mem) {
                    if matches!(cmd, SourceCmd::SendChunk { .. }) {
                        queue.push(SourceEvent::ChannelReady);
                    }
                    all.push(cmd);
                }
                if queue.is_empty() && !s.is_done() {
                    queue.push(SourceEvent::ChannelReady);
                }
            }
            all
        };
        assert!(s.is_done());
        assert_eq!(count_full(&cmds), 16);
        assert_eq!(count_zero(&cmds), 16);
    }

    #[test]
    fn precopy_retransmits_dirtied_pages() {
        let mut mem = fixture(32);
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 4,
                precopy_threshold_pages: 0,
                precopy_max_rounds: 3,
                ..SourceConfig::new(Technique::PreCopy)
            },
            32,
            SimTime::ZERO,
        );
        // Drive round 1 manually, dirtying page 3 mid-round (after it was
        // sent in the first chunk).
        let mut pending = s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        mem.touch(3, true); // dirty an already-sent page
        let mut guard = 0;
        while !s.is_done() {
            guard += 1;
            assert!(guard < 1000);
            let handoff_sent = pending
                .iter()
                .any(|c| matches!(c, SourceCmd::SendHandoff { .. }));
            pending = if handoff_sent {
                s.on_event(SimTime::ZERO, SourceEvent::HandoffDelivered, &mem)
            } else {
                s.on_event(SimTime::ZERO, SourceEvent::ChannelReady, &mem)
            };
        }
        assert!(s.metrics().pages_retransmitted >= 1);
        assert!(s.metrics().rounds >= 2, "dirty page forces another round");
    }

    /// Regression: retransmissions used to be charged when a chunk was
    /// *built*. A chunk stashed awaiting swap-ins and then dropped by
    /// `reset_for_retry` left its retransmit counts behind even though
    /// nothing was re-sent on the wire, inflating the totals of any
    /// pre-copy run whose round aborted mid-chunk. They are now charged
    /// at emit time, so an aborted attempt's stashed chunk contributes
    /// nothing.
    #[test]
    fn aborted_stashed_chunk_leaves_no_phantom_retransmits() {
        let mut evs = Vec::new();
        let mut mem = VmMemory::new(VmMemoryConfig {
            pages: 8,
            page_size: 4096,
            limit_pages: 8,
        });
        for p in 0..8 {
            mem.touch(p, true);
            mem.fault_in(p, true, &mut evs);
        }
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 4,
                precopy_threshold_pages: 0,
                precopy_max_rounds: 3,
                ..SourceConfig::new(Technique::PreCopy)
            },
            8,
            SimTime::ZERO,
        );
        // Round 1, first chunk: pages 0..4 ship.
        s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        // Dirty two already-sent pages, then shrink the limit one page at
        // a time until exactly one of them is evicted to swap. Which page
        // the two-list second-chance reclaimer picks is an implementation
        // detail; either way round 2's chunk re-adds the present one (a
        // retransmit) and stalls on a swap-in for the swapped one.
        mem.touch(0, true);
        mem.touch(1, true);
        let mut limit = 8u64;
        loop {
            let sw0 = matches!(mem.pagemap(0), PagemapEntry::Swapped { .. });
            let sw1 = matches!(mem.pagemap(1), PagemapEntry::Swapped { .. });
            if sw0 != sw1 {
                break;
            }
            assert!(
                !sw0 && limit > 1,
                "could not arrange exactly one of pages 0/1 swapped"
            );
            limit -= 1;
            mem.set_limit_bytes(limit * 4096, &mut evs);
        }
        // Drive until a stashed chunk carrying a retransmit forms: round
        // 2's dirty set is {0, 1}, and building its chunk re-adds the
        // present dirty page (a re-send) then stalls on a swap-in for the
        // swapped one. Stalls on clean pages the shrink happened to evict
        // from round 1's untransferred tail are completed and skipped.
        let mut pending: Option<(u64, Vec<(u32, u32)>)> = None;
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100, "no stashed chunk with a retransmit formed");
            if s.stash.as_ref().is_some_and(|st| st.1.retransmits >= 1) {
                break;
            }
            let cmds = if let Some((batch, pages)) = pending.take() {
                for (pfn, _) in &pages {
                    if matches!(mem.pagemap(*pfn), PagemapEntry::Swapped { .. }) {
                        mem.begin_swap_in(*pfn);
                        mem.fault_in(*pfn, false, &mut evs);
                    }
                }
                s.on_event(SimTime::ZERO, SourceEvent::SwapInDone { batch }, &mem)
            } else {
                assert!(!s.is_done(), "session finished without stalling mid-chunk");
                s.on_event(SimTime::ZERO, SourceEvent::ChannelReady, &mem)
            };
            pending = cmds.iter().find_map(|c| match c {
                SourceCmd::SwapIn { batch, pages } => Some((*batch, pages.clone())),
                _ => None,
            });
        }
        // The connection drops; the attempt aborts with the chunk stashed.
        s.reset_for_retry(SimTime::ZERO);
        assert_eq!(
            s.metrics().pages_retransmitted,
            0,
            "nothing was emitted twice, so nothing may be counted as retransmitted"
        );
        // The retry re-ships everything from scratch; with per-attempt
        // state cleared those sends are all first transmissions.
        let cmds = drive_until_quiet(&mut s, &mut mem, SimTime::ZERO);
        assert!(s.is_done());
        assert!(count_full(&cmds) >= 8, "retry re-covers the populated set");
        assert_eq!(
            s.metrics().pages_retransmitted,
            0,
            "corrected total: the aborted build contributes nothing"
        );
        // The abort itself is visible in the phase log.
        assert!(s
            .metrics()
            .phase_log
            .iter()
            .any(|p| p.phase == agile_trace::PhaseKind::Aborted));
    }

    #[test]
    fn phase_log_tracks_transitions() {
        use agile_trace::PhaseKind;
        let mut mem = fixture(32);
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 8,
                ..SourceConfig::new(Technique::Agile)
            },
            32,
            SimTime::ZERO,
        );
        drive_until_quiet(&mut s, &mut mem, SimTime::ZERO);
        assert!(s.is_done());
        let kinds: Vec<PhaseKind> = s.metrics().phase_log.iter().map(|p| p.phase).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::LiveRound,
                PhaseKind::AwaitHandoff,
                PhaseKind::Push,
                PhaseKind::Done
            ],
            "agile: exactly one live round, then handoff, push, done"
        );
        // Counter snapshots are monotone along the log.
        for w in s.metrics().phase_log.windows(2) {
            assert!(w[0].migration_bytes <= w[1].migration_bytes);
            assert!(w[0].pages_sent_full <= w[1].pages_sent_full);
        }
    }

    #[test]
    fn demand_request_for_present_page_is_priority() {
        let mem = fixture(32);
        let mut s = SourceSession::new(SourceConfig::new(Technique::PostCopy), 32, SimTime::ZERO);
        s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        s.on_event(SimTime::ZERO, SourceEvent::HandoffDelivered, &mem);
        let cmds = s.on_event(SimTime::ZERO, SourceEvent::DemandRequest { pfn: 5 }, &mem);
        match &cmds[0] {
            SourceCmd::SendChunk { chunk, priority } => {
                assert!(*priority);
                assert_eq!(chunk.full.len(), 1);
                assert_eq!(chunk.full[0].pfn, 5);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.metrics().pages_demand_from_source, 1);
        // A duplicate demand is ignored.
        let dup = s.on_event(SimTime::ZERO, SourceEvent::DemandRequest { pfn: 5 }, &mem);
        assert!(dup.is_empty());
    }

    #[test]
    fn demand_request_for_swapped_page_swaps_in_first() {
        let mut mem = fixture(8);
        let victim = (0..32u32)
            .find(|p| matches!(mem.pagemap(*p), PagemapEntry::Swapped { .. }))
            .unwrap();
        let mut s = SourceSession::new(SourceConfig::new(Technique::PostCopy), 32, SimTime::ZERO);
        s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        s.on_event(SimTime::ZERO, SourceEvent::HandoffDelivered, &mem);
        let cmds = s.on_event(
            SimTime::ZERO,
            SourceEvent::DemandRequest { pfn: victim },
            &mem,
        );
        let batch = match &cmds[0] {
            SourceCmd::SwapIn { batch, pages } => {
                assert_eq!(pages.len(), 1);
                assert_eq!(pages[0].0, victim);
                *batch
            }
            other => panic!("{other:?}"),
        };
        // Complete the swap-in.
        let mut evs = Vec::new();
        mem.begin_swap_in(victim);
        mem.fault_in(victim, false, &mut evs);
        let cmds = s.on_event(SimTime::ZERO, SourceEvent::SwapInDone { batch }, &mem);
        match &cmds[0] {
            SourceCmd::SendChunk { chunk, priority } => {
                assert!(*priority);
                assert_eq!(chunk.full[0].pfn, victim);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn agile_push_set_is_only_dirty_pages() {
        let mem = fixture(32);
        let mut s = SourceSession::new(
            SourceConfig {
                chunk_pages: 64,
                ..SourceConfig::new(Technique::Agile)
            },
            32,
            SimTime::ZERO,
        );
        // Round 1 (everything resident, one chunk covers all 32 entries?
        // chunk budget 64 ≥ 32, so the first ChannelReady ends the pass).
        let mut cmds = s.on_event(SimTime::ZERO, SourceEvent::Start, &mem);
        // Dirty two pages before the round completes? The round already
        // completed within Start (single chunk). Instead verify: dirty after
        // send but before suspend is impossible here, so expect zero dirty.
        while !matches!(s.phase, Phase::AwaitHandoff) {
            cmds.extend(s.on_event(SimTime::ZERO, SourceEvent::ChannelReady, &mem));
        }
        assert_eq!(s.handoff_dirty().unwrap().count_ones(), 0);
        cmds.extend(s.on_event(SimTime::ZERO, SourceEvent::HandoffDelivered, &mem));
        let done = s.on_event(SimTime::ZERO, SourceEvent::ChannelReady, &mem);
        assert!(matches!(done.last(), Some(SourceCmd::Done)));
        let _ = cmds;
    }
}
