//! Destination-side Migration Manager (the UMEM driver + UMEMD process of
//! §IV-F).
//!
//! The destination KVM/QEMU process receives chunks and installs pages into
//! the arriving VM's memory. After the VM resumes, faults on missing pages
//! are trapped (the UMEM path) and classified exactly as the paper
//! describes: *"the thread refers to the swapped bitmap. If the
//! corresponding bit is set, it reads the offset from the swap offset
//! table and the page from the VMD. If the swapped bit is not set, the
//! thread requests the page from the source."* — with the dirty bitmap
//! (delivered in the handoff) consulted first, since a dirtied page's swap
//! slot may hold stale content.

use agile_memory::{Eviction, VmMemory};

use crate::bitmap::Bitmap;
use crate::chunk::Chunk;
use crate::metrics::Technique;

/// Where a destination fault must be served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultRoute {
    /// The page already arrived (raced with an active push) — retry the
    /// access; no I/O needed.
    AlreadyHere,
    /// Request the page from the source host (dirtied during the live
    /// round, or any unsent page under post-copy).
    FromSource,
    /// Read the page from the per-VM swap device.
    FromSwap {
        /// Slot on the portable swap device.
        slot: u32,
        /// Content version expected there (for end-to-end checks).
        version: u32,
    },
    /// Page was never populated at the source: zero-fill locally.
    ZeroFill,
}

/// Destination-side migration session.
#[derive(Clone, Debug)]
pub struct DestSession {
    technique: Technique,
    /// Full pages installed (from any path).
    received: Bitmap,
    /// Pages known to live on the per-VM swap device.
    swapped: Bitmap,
    /// Swap-offset table (parallel array; valid where `swapped` is set).
    swap_slots: Vec<u32>,
    /// Version stored at each swapped slot.
    swap_versions: Vec<u32>,
    /// Pages known to be zero at the source.
    known_zero: Bitmap,
    /// Dirty bitmap from the handoff; present once the VM resumed here.
    dirty: Option<Bitmap>,
    /// Pages installed via each path (diagnostics / tables).
    pub pages_installed_stream: u64,
    /// Pages served from the per-VM swap device after resume.
    pub pages_faulted_from_swap: u64,
    /// Pages served from the source after resume.
    pub pages_faulted_from_source: u64,
    /// Duplicate deliveries ignored (demand/push races).
    pub duplicate_pages_ignored: u64,
    /// Stale live-round copies discarded when the handoff's dirty bitmap
    /// arrived (QEMU's postcopy discard).
    pub pages_discarded_at_resume: u64,
}

impl DestSession {
    /// Create the receiving side for a VM with `n_pages` guest pages.
    pub fn new(technique: Technique, n_pages: u32) -> Self {
        DestSession {
            technique,
            received: Bitmap::zeros(n_pages),
            swapped: Bitmap::zeros(n_pages),
            swap_slots: vec![u32::MAX; n_pages as usize],
            swap_versions: vec![0; n_pages as usize],
            known_zero: Bitmap::zeros(n_pages),
            dirty: None,
            pages_installed_stream: 0,
            pages_faulted_from_swap: 0,
            pages_faulted_from_source: 0,
            duplicate_pages_ignored: 0,
            pages_discarded_at_resume: 0,
        }
    }

    /// Technique in use.
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// True once the handoff arrived (the VM runs here now).
    pub fn resumed(&self) -> bool {
        self.dirty.is_some()
    }

    /// Pages installed so far.
    pub fn received_pages(&self) -> u32 {
        self.received.count_ones()
    }

    /// Install a chunk into the arriving VM's memory. Evictions triggered
    /// by the install (destination under its own reservation) are appended
    /// to `evictions` for the executor to charge.
    pub fn on_chunk(&mut self, chunk: &Chunk, mem: &mut VmMemory, evictions: &mut Vec<Eviction>) {
        for fp in &chunk.full {
            if self.received.get(fp.pfn) {
                if self.resumed() {
                    // Post-resume push/demand race: both copies carry the
                    // same source version and the VM may since have written
                    // the page — the first copy wins.
                    self.duplicate_pages_ignored += 1;
                    continue;
                }
                // Pre-resume retransmission (pre-copy round ≥ 2 or
                // stop-and-copy): the newer copy overwrites.
                mem.install_page(fp.pfn, fp.version, evictions);
                self.pages_installed_stream += 1;
                continue;
            }
            self.received.set(fp.pfn);
            // A fresher full copy supersedes any swapped-marker state.
            if self.swapped.get(fp.pfn) {
                self.swapped.clear(fp.pfn);
            }
            mem.install_page(fp.pfn, fp.version, evictions);
            self.pages_installed_stream += 1;
            if let Some(d) = &mut self.dirty {
                d.clear(fp.pfn);
            }
        }
        for sm in &chunk.swapped {
            debug_assert!(!self.received.get(sm.pfn), "swapped marker after full page");
            self.swapped.set(sm.pfn);
            self.swap_slots[sm.pfn as usize] = sm.slot;
            self.swap_versions[sm.pfn as usize] = sm.version;
            mem.install_swapped(sm.pfn, sm.slot, sm.version);
        }
        for &z in &chunk.zero {
            if !self.received.get(z) {
                self.known_zero.set(z);
            }
        }
    }

    /// Deliver the handoff: the VM resumes at the destination with this
    /// dirty bitmap.
    ///
    /// Copies received during the live round for pages the source has
    /// since dirtied are *stale* — they are discarded before the VM runs
    /// (the QEMU postcopy discard-bitmap step), so accesses fault and
    /// route to the source, and the eventual push installs the fresh
    /// content instead of being mistaken for a race duplicate.
    pub fn on_handoff(&mut self, dirty: Bitmap, mem: &mut VmMemory) {
        assert!(self.dirty.is_none(), "handoff delivered twice");
        let received = &mut self.received;
        let swapped = &mut self.swapped;
        let known_zero = &mut self.known_zero;
        let mut discarded = 0u64;
        dirty.for_each_set(|pfn| {
            if received.clear(pfn) {
                discarded += 1;
            }
            // A swapped marker (or zero marker) for a dirtied page points
            // at stale content; the source freed its slot when the guest
            // wrote, so the tracking entry is dropped without a free.
            if swapped.clear(pfn) {
                mem.discard_swapped(pfn);
            }
            known_zero.clear(pfn);
        });
        self.pages_discarded_at_resume += discarded;
        self.dirty = Some(dirty);
    }

    /// Classify a post-resume fault on `pfn` (the UMEMD fault thread).
    pub fn classify_fault(&self, pfn: u32) -> FaultRoute {
        assert!(self.resumed(), "fault before resume");
        if self.received.get(pfn) {
            return FaultRoute::AlreadyHere;
        }
        let dirty = self.dirty.as_ref().expect("resumed");
        if dirty.get(pfn) {
            return FaultRoute::FromSource;
        }
        if self.swapped.get(pfn) {
            return FaultRoute::FromSwap {
                slot: self.swap_slots[pfn as usize],
                version: self.swap_versions[pfn as usize],
            };
        }
        FaultRoute::ZeroFill
    }

    /// Note that a priority (demand) page arrived from the source. The
    /// install itself flows through [`DestSession::on_chunk`]; this counts
    /// the path.
    pub fn note_demand_served(&mut self) {
        self.pages_faulted_from_source += 1;
    }

    /// Zero-fill a faulted never-populated page locally.
    pub fn install_zero_fill(
        &mut self,
        pfn: u32,
        mem: &mut VmMemory,
        evictions: &mut Vec<Eviction>,
    ) {
        debug_assert!(self.known_zero.get(pfn) || !self.resumed());
        self.received.set(pfn);
        mem.install_page(pfn, 0, evictions);
    }

    /// Are any pages still neither received, swapped-resident, nor zero?
    /// (Completion check for tests.)
    pub fn fully_accounted(&self) -> bool {
        match &self.dirty {
            Some(d) => Bitmap::all_covered(&[&self.received, &self.swapped, &self.known_zero, d]),
            None => Bitmap::all_covered(&[&self.received, &self.swapped, &self.known_zero]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{FullPage, SwappedMarker};
    use agile_memory::VmMemoryConfig;

    fn dest_mem(pages: u32) -> VmMemory {
        VmMemory::new(VmMemoryConfig {
            pages,
            page_size: 4096,
            limit_pages: pages,
        })
    }

    fn chunk_full(pfns: &[(u32, u32)]) -> Chunk {
        let mut c = Chunk::default();
        for &(pfn, version) in pfns {
            c.full.push(FullPage { pfn, version });
        }
        c
    }

    #[test]
    fn stream_install_and_resume() {
        let mut d = DestSession::new(Technique::Agile, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        d.on_chunk(&chunk_full(&[(0, 5), (1, 7)]), &mut mem, &mut evs);
        assert_eq!(d.received_pages(), 2);
        assert_eq!(mem.version(0), 5);
        assert!(!d.resumed());
        d.on_handoff(Bitmap::zeros(16), &mut mem);
        assert!(d.resumed());
        assert_eq!(d.classify_fault(0), FaultRoute::AlreadyHere);
    }

    #[test]
    fn swapped_markers_route_to_swap() {
        let mut d = DestSession::new(Technique::Agile, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        let mut c = Chunk::default();
        c.swapped.push(SwappedMarker {
            pfn: 3,
            slot: 42,
            version: 9,
        });
        d.on_chunk(&c, &mut mem, &mut evs);
        d.on_handoff(Bitmap::zeros(16), &mut mem);
        assert_eq!(
            d.classify_fault(3),
            FaultRoute::FromSwap {
                slot: 42,
                version: 9
            }
        );
        // The VM's own pagemap agrees.
        assert!(mem.pagemap(3).is_swapped());
    }

    #[test]
    fn dirty_bitmap_takes_precedence_over_swap() {
        // A page that was swapped during the live round but dirtied before
        // suspension: its slot holds stale content; the fault must go to
        // the source.
        let mut d = DestSession::new(Technique::Agile, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        let mut c = Chunk::default();
        c.swapped.push(SwappedMarker {
            pfn: 3,
            slot: 42,
            version: 9,
        });
        d.on_chunk(&c, &mut mem, &mut evs);
        let mut dirty = Bitmap::zeros(16);
        dirty.set(3);
        d.on_handoff(dirty, &mut mem);
        assert_eq!(d.classify_fault(3), FaultRoute::FromSource);
    }

    #[test]
    fn unknown_pages_zero_fill() {
        let mut d = DestSession::new(Technique::Agile, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        let mut c = Chunk::default();
        c.zero.push(8);
        d.on_chunk(&c, &mut mem, &mut evs);
        d.on_handoff(Bitmap::zeros(16), &mut mem);
        assert_eq!(d.classify_fault(8), FaultRoute::ZeroFill);
        d.install_zero_fill(8, &mut mem, &mut evs);
        assert_eq!(d.classify_fault(8), FaultRoute::AlreadyHere);
        assert_eq!(mem.version(8), 0);
    }

    #[test]
    fn pre_resume_retransmission_overwrites() {
        // Pre-copy rounds ≥ 2 resend dirtied pages before the VM resumes;
        // the newer copy must win.
        let mut d = DestSession::new(Technique::PreCopy, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        d.on_chunk(&chunk_full(&[(5, 2)]), &mut mem, &mut evs);
        assert_eq!(mem.version(5), 2);
        d.on_chunk(&chunk_full(&[(5, 7)]), &mut mem, &mut evs);
        assert_eq!(mem.version(5), 7, "retransmission must overwrite");
        assert_eq!(d.duplicate_pages_ignored, 0);
    }

    #[test]
    fn postcopy_faults_route_to_source() {
        let mut d = DestSession::new(Technique::PostCopy, 16);
        let mut mem = dest_mem(16);
        // Post-copy handoff: everything still at the source.
        d.on_handoff(Bitmap::ones(16), &mut mem);
        assert_eq!(d.classify_fault(5), FaultRoute::FromSource);
        // Push arrives: installs and clears dirty.
        let mut evs = Vec::new();
        d.on_chunk(&chunk_full(&[(5, 2)]), &mut mem, &mut evs);
        assert_eq!(d.classify_fault(5), FaultRoute::AlreadyHere);
    }

    #[test]
    fn duplicate_delivery_keeps_first_copy() {
        // Post-resume semantics: the race duplicate must not clobber a
        // newer guest write.
        let mut d = DestSession::new(Technique::PostCopy, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        d.on_handoff(Bitmap::ones(16), &mut mem);
        d.on_chunk(&chunk_full(&[(5, 2)]), &mut mem, &mut evs);
        // The VM wrote to the page after receiving it...
        mem.touch(5, true);
        let v_after_write = mem.version(5);
        // ...then a duplicate (raced push) arrives with the old content.
        d.on_chunk(&chunk_full(&[(5, 2)]), &mut mem, &mut evs);
        assert_eq!(mem.version(5), v_after_write, "newer write preserved");
        assert_eq!(d.duplicate_pages_ignored, 1);
    }

    #[test]
    fn full_page_supersedes_marker() {
        // Agile: page 3 swapped at round 1 (marker), dirtied, then pushed
        // in full after resume.
        let mut d = DestSession::new(Technique::Agile, 16);
        let mut mem = dest_mem(16);
        let mut evs = Vec::new();
        let mut c = Chunk::default();
        c.swapped.push(SwappedMarker {
            pfn: 3,
            slot: 42,
            version: 9,
        });
        d.on_chunk(&c, &mut mem, &mut evs);
        let mut dirty = Bitmap::zeros(16);
        dirty.set(3);
        d.on_handoff(dirty, &mut mem);
        d.on_chunk(&chunk_full(&[(3, 11)]), &mut mem, &mut evs);
        assert_eq!(d.classify_fault(3), FaultRoute::AlreadyHere);
        assert_eq!(mem.version(3), 11);
        assert!(mem.pagemap(3).is_present());
    }

    #[test]
    fn accounting_covers_all_pages() {
        let mut d = DestSession::new(Technique::Agile, 8);
        let mut mem = dest_mem(8);
        let mut evs = Vec::new();
        let mut c = Chunk::default();
        for pfn in 0..4 {
            c.full.push(FullPage { pfn, version: 1 });
        }
        c.swapped.push(SwappedMarker {
            pfn: 4,
            slot: 0,
            version: 1,
        });
        c.zero.push(5);
        c.zero.push(6);
        d.on_chunk(&c, &mut mem, &mut evs);
        let mut dirty = Bitmap::zeros(8);
        dirty.set(7);
        d.on_handoff(dirty, &mut mem);
        assert!(d.fully_accounted());
    }

    #[test]
    #[should_panic(expected = "fault before resume")]
    fn fault_before_resume_is_a_bug() {
        let d = DestSession::new(Technique::Agile, 8);
        d.classify_fault(0);
    }
}
