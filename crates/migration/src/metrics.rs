//! Migration metrics — the quantities the paper's evaluation reports.
//!
//! Total migration time (Fig. 7, Table II), amount of data transferred on
//! the migration channel (Fig. 8, Table III), downtime, and the per-path
//! page counts that explain them.

use agile_sim_core::{SimDuration, SimTime};
use agile_trace::{MetricsRegistry, PhaseKind, PhasePoint};

/// Which migration technique ran.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Technique {
    /// Iterative pre-copy (the KVM/QEMU default).
    PreCopy,
    /// Post-copy with active push + demand paging.
    PostCopy,
    /// The paper's hybrid: one live round, swapped pages by reference.
    Agile,
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Technique::PreCopy => "pre-copy",
            Technique::PostCopy => "post-copy",
            Technique::Agile => "agile",
        })
    }
}

/// Counters and timestamps for one migration.
#[derive(Clone, Debug)]
pub struct MigrationMetrics {
    /// Technique used.
    pub technique: Technique,
    /// Migration start.
    pub started_at: SimTime,
    /// VM suspension instant (end of live phase).
    pub suspended_at: Option<SimTime>,
    /// VM resumption at the destination.
    pub resumed_at: Option<SimTime>,
    /// All state transferred; source released.
    pub completed_at: Option<SimTime>,

    /// Bytes put on the migration TCP connection (chunks + handoff).
    pub migration_bytes: u64,
    /// Full pages sent (all paths: rounds, stop-and-copy, push, demand).
    pub pages_sent_full: u64,
    /// Swap-offset markers sent instead of pages (Agile).
    pub pages_sent_as_offsets: u64,
    /// Zero-page markers sent.
    pub pages_sent_zero: u64,
    /// Pages re-sent because they were dirtied (pre-copy rounds ≥ 2 and
    /// stop-and-copy, or Agile/post-copy push of re-dirtied pages).
    pub pages_retransmitted: u64,
    /// Pages the Migration Manager had to swap in before sending.
    pub pages_swapped_in_for_transfer: u64,
    /// Pages served to the destination on demand (from the source).
    pub pages_demand_from_source: u64,
    /// Pre-copy rounds completed (live rounds only).
    pub rounds: u32,
    /// Pages in the post-suspension pass: the stop-and-copy set for
    /// pre-copy, the push set for post-copy/Agile. Stamped at suspension.
    pub push_set_pages: u64,
    /// Counter snapshots taken at every phase entry (including the
    /// `Aborted` marker a connection-drop retry leaves behind). The
    /// substrate of the exported phase timeline.
    pub phase_log: Vec<PhasePoint>,
}

impl MigrationMetrics {
    /// Fresh metrics at migration start.
    pub fn new(technique: Technique, started_at: SimTime) -> Self {
        MigrationMetrics {
            technique,
            started_at,
            suspended_at: None,
            resumed_at: None,
            completed_at: None,
            migration_bytes: 0,
            pages_sent_full: 0,
            pages_sent_as_offsets: 0,
            pages_sent_zero: 0,
            pages_retransmitted: 0,
            pages_swapped_in_for_transfer: 0,
            pages_demand_from_source: 0,
            rounds: 0,
            push_set_pages: 0,
            phase_log: Vec::new(),
        }
    }

    /// Append a phase-entry snapshot of the cumulative counters.
    pub fn record_phase(&mut self, at: SimTime, phase: PhaseKind, round: u32) {
        self.phase_log.push(PhasePoint {
            at,
            phase,
            round,
            migration_bytes: self.migration_bytes,
            pages_sent_full: self.pages_sent_full,
            pages_sent_as_offsets: self.pages_sent_as_offsets,
            pages_sent_zero: self.pages_sent_zero,
            pages_retransmitted: self.pages_retransmitted,
            pages_swapped_in_for_transfer: self.pages_swapped_in_for_transfer,
            pages_demand_from_source: self.pages_demand_from_source,
        });
    }

    /// Publish every counter into `reg` under `prefix` (e.g. `mig0.`),
    /// replacing the ad-hoc per-field reporting with the typed registry.
    pub fn publish_to(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}migration_bytes"), self.migration_bytes);
        reg.set_counter(&format!("{prefix}pages_sent_full"), self.pages_sent_full);
        reg.set_counter(
            &format!("{prefix}pages_sent_as_offsets"),
            self.pages_sent_as_offsets,
        );
        reg.set_counter(&format!("{prefix}pages_sent_zero"), self.pages_sent_zero);
        reg.set_counter(
            &format!("{prefix}pages_retransmitted"),
            self.pages_retransmitted,
        );
        reg.set_counter(
            &format!("{prefix}pages_swapped_in_for_transfer"),
            self.pages_swapped_in_for_transfer,
        );
        reg.set_counter(
            &format!("{prefix}pages_demand_from_source"),
            self.pages_demand_from_source,
        );
        reg.set_counter(&format!("{prefix}rounds"), u64::from(self.rounds));
        reg.set_counter(&format!("{prefix}push_set_pages"), self.push_set_pages);
        if let Some(d) = self.downtime() {
            reg.observe(&format!("{prefix}downtime"), d);
        }
        if let Some(d) = self.total_time() {
            reg.observe(&format!("{prefix}total_time"), d);
        }
    }

    /// Total migration time (start → source released). `None` while the
    /// migration is in flight.
    pub fn total_time(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|t| t.saturating_since(self.started_at))
    }

    /// Downtime: suspension → resumption at the destination.
    pub fn downtime(&self) -> Option<SimDuration> {
        match (self.suspended_at, self.resumed_at) {
            (Some(s), Some(r)) => Some(r.saturating_since(s)),
            _ => None,
        }
    }

    /// Time the VM executed at the source while migrating (live phase).
    pub fn live_phase(&self) -> Option<SimDuration> {
        self.suspended_at
            .map(|t| t.saturating_since(self.started_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_timing() {
        let mut m = MigrationMetrics::new(Technique::Agile, SimTime::from_secs(10));
        assert_eq!(m.total_time(), None);
        assert_eq!(m.downtime(), None);
        m.suspended_at = Some(SimTime::from_secs(40));
        m.resumed_at = Some(SimTime::from_millis(40_200));
        m.completed_at = Some(SimTime::from_secs(118));
        assert_eq!(m.total_time(), Some(SimDuration::from_secs(108)));
        assert_eq!(m.downtime(), Some(SimDuration::from_millis(200)));
        assert_eq!(m.live_phase(), Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn technique_display() {
        assert_eq!(Technique::PreCopy.to_string(), "pre-copy");
        assert_eq!(Technique::PostCopy.to_string(), "post-copy");
        assert_eq!(Technique::Agile.to_string(), "agile");
    }
}
