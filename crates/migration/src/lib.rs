//! # agile-migration
//!
//! The paper's primary contribution and its two baselines, as sans-IO
//! state machines:
//!
//! * [`SourceSession`] — the source-side Migration Manager. One machine
//!   implements iterative **pre-copy** (rounds until convergence, then
//!   stop-and-copy), **post-copy** (immediate suspend, active push +
//!   demand paging), and **Agile** (one live round that replaces
//!   swapped-out pages with 16-byte swap offsets, then hybrid post-copy of
//!   only the dirtied pages).
//! * [`DestSession`] — the destination-side Migration Manager (the UMEM
//!   fault path of §IV-F): installs arriving chunks, and after resume
//!   classifies faults dirty-bitmap-first into *from source*, *from the
//!   per-VM swap device*, or *zero-fill*.
//! * [`Chunk`] — the migration-channel wire format, including the
//!   `SWAPPED`-flag marker entries that give Agile its data-volume win.
//! * [`MigrationMetrics`] — total migration time, downtime, bytes moved,
//!   per-path page counts (Figures 7–8, Tables II–III).
//!
//! The cluster executor (in `agile-cluster`) connects these machines to
//! the simulated network, swap devices, and VM memory; every protocol
//! decision lives here and is unit-tested in isolation.

pub mod bitmap;
pub mod chunk;
pub mod dest;
pub mod metrics;
pub mod source;

pub use bitmap::Bitmap;
pub use chunk::{
    Chunk, FullPage, SwappedMarker, CHUNK_HEADER, MARKER_ENTRY_BYTES, PAGE_ENTRY_HEADER,
};
pub use dest::{DestSession, FaultRoute};
pub use metrics::{MigrationMetrics, Technique};
pub use source::{SourceCmd, SourceConfig, SourceEvent, SourceSession};
