//! Page bitmaps.
//!
//! Migration keeps several per-page bit vectors: the dirty bitmap that
//! travels to the destination at handoff, the destination's received /
//! swapped / known-zero maps. 2.6 M pages (a 10 GB VM) is 320 KB of bits,
//! so scans must be word-at-a-time.

/// A fixed-size bit vector indexed by page frame number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: u32,
    ones: u32,
}

impl Bitmap {
    /// All-zeros bitmap over `len` pages.
    pub fn zeros(len: u32) -> Self {
        Bitmap {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// All-ones bitmap over `len` pages.
    pub fn ones(len: u32) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; (len as usize).div_ceil(64)],
            len,
            ones: len,
        };
        b.trim_tail();
        b
    }

    fn trim_tail(&mut self) {
        let tail_bits = self.len as usize % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of pages covered.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the bitmap covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }

    /// Set bit `i`; returns the previous value.
    #[inline]
    pub fn set(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i as usize / 64];
        let mask = 1 << (i % 64);
        let old = *w & mask != 0;
        *w |= mask;
        if !old {
            self.ones += 1;
        }
        old
    }

    /// Clear bit `i`; returns the previous value.
    #[inline]
    pub fn clear(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i as usize / 64];
        let mask = 1 << (i % 64);
        let old = *w & mask != 0;
        *w &= !mask;
        if old {
            self.ones -= 1;
        }
        old
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// First set bit at or after `from`, word-at-a-time.
    pub fn next_set(&self, from: u32) -> Option<u32> {
        if from >= self.len {
            return None;
        }
        let mut wi = from as usize / 64;
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let bit = wi as u32 * 64 + word.trailing_zeros();
                return (bit < self.len).then_some(bit);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Iterate all set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cursor = 0u32;
        std::iter::from_fn(move || {
            let next = self.next_set(cursor)?;
            cursor = next + 1;
            Some(next)
        })
    }

    /// Bytes this bitmap occupies on the wire (the handoff message carries
    /// the dirty bitmap to the destination).
    pub fn wire_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert!(!z.get(50));
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(o.get(99));
        assert_eq!(o.iter_set().count(), 100);
    }

    #[test]
    fn ones_trims_partial_tail_word() {
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert_eq!(o.iter_set().last(), Some(69));
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut b = Bitmap::zeros(128);
        assert!(!b.set(64));
        assert!(b.set(64), "second set reports previous value");
        assert_eq!(b.count_ones(), 1);
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn next_set_scans_across_words() {
        let mut b = Bitmap::zeros(300);
        for i in [0u32, 63, 64, 130, 299] {
            b.set(i);
        }
        assert_eq!(b.next_set(0), Some(0));
        assert_eq!(b.next_set(1), Some(63));
        assert_eq!(b.next_set(64), Some(64));
        assert_eq!(b.next_set(65), Some(130));
        assert_eq!(b.next_set(131), Some(299));
        assert_eq!(b.next_set(300), None);
        let all: Vec<u32> = b.iter_set().collect();
        assert_eq!(all, vec![0, 63, 64, 130, 299]);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::ones(65);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.next_set(0), None);
    }

    #[test]
    fn wire_bytes_rounds_to_words() {
        assert_eq!(Bitmap::zeros(1).wire_bytes(), 8);
        assert_eq!(Bitmap::zeros(64).wire_bytes(), 8);
        assert_eq!(Bitmap::zeros(65).wire_bytes(), 16);
        // 10 GB VM at 4 KB pages: 2,621,440 pages → 320 KiB.
        assert_eq!(Bitmap::zeros(2_621_440).wire_bytes(), 327_680);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.next_set(0), None);
        assert_eq!(b.iter_set().count(), 0);
    }
}
