//! Page bitmaps.
//!
//! Migration keeps several per-page bit vectors: the dirty bitmap that
//! travels to the destination at handoff, the destination's received /
//! swapped / known-zero maps. 2.6 M pages (a 10 GB VM) is 320 KB of bits,
//! so scans must be word-at-a-time.

/// A fixed-size bit vector indexed by page frame number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: u32,
    ones: u32,
}

impl Bitmap {
    /// All-zeros bitmap over `len` pages.
    pub fn zeros(len: u32) -> Self {
        Bitmap {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// All-ones bitmap over `len` pages.
    pub fn ones(len: u32) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; (len as usize).div_ceil(64)],
            len,
            ones: len,
        };
        b.trim_tail();
        b
    }

    fn trim_tail(&mut self) {
        let tail_bits = self.len as usize % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of pages covered.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the bitmap covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }

    /// Set bit `i`; returns the previous value.
    #[inline]
    pub fn set(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i as usize / 64];
        let mask = 1 << (i % 64);
        let old = *w & mask != 0;
        *w |= mask;
        if !old {
            self.ones += 1;
        }
        old
    }

    /// Clear bit `i`; returns the previous value.
    #[inline]
    pub fn clear(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i as usize / 64];
        let mask = 1 << (i % 64);
        let old = *w & mask != 0;
        *w &= !mask;
        if old {
            self.ones -= 1;
        }
        old
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// First set bit at or after `from`, word-at-a-time.
    pub fn next_set(&self, from: u32) -> Option<u32> {
        if from >= self.len {
            return None;
        }
        let mut wi = from as usize / 64;
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let bit = wi as u32 * 64 + word.trailing_zeros();
                return (bit < self.len).then_some(bit);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Iterate all set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cursor = 0u32;
        std::iter::from_fn(move || {
            let next = self.next_set(cursor)?;
            cursor = next + 1;
            Some(next)
        })
    }

    /// Visit every set bit in ascending order. Words are scanned in
    /// cache-line strides (8 × u64 = 512 pages): each stride is OR-folded
    /// first, so an all-zero line costs eight loads and one branch instead
    /// of eight. Within a nonzero stride, each word's bits are peeled with
    /// `trailing_zeros`. Ultra-sparse maps (one dirty page per megabytes of
    /// clean ones — the tail of a converging pre-copy) thus scan at memory
    /// bandwidth rather than per-word branch throughput.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(u32)) {
        const STRIDE: usize = 8;
        let mut chunks = self.words.chunks_exact(STRIDE);
        let mut base = 0u32;
        for chunk in &mut chunks {
            if chunk.iter().fold(0u64, |acc, &w| acc | w) != 0 {
                for (wi, &w) in chunk.iter().enumerate() {
                    let mut word = w;
                    while word != 0 {
                        let bit = base + wi as u32 * 64 + word.trailing_zeros();
                        word &= word - 1;
                        f(bit);
                    }
                }
            }
            base += (STRIDE * 64) as u32;
        }
        for (wi, &w) in chunks.remainder().iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let bit = base + wi as u32 * 64 + word.trailing_zeros();
                word &= word - 1;
                f(bit);
            }
        }
    }

    /// Visit and clear every set bit in ascending order (word-wise
    /// clear-and-collect): each word is read once and zeroed whole, so a
    /// full drain never revisits cleared prefixes.
    pub fn drain_set(&mut self, mut f: impl FnMut(u32)) {
        for (wi, w) in self.words.iter_mut().enumerate() {
            let mut word = std::mem::take(w);
            while word != 0 {
                let bit = wi as u32 * 64 + word.trailing_zeros();
                word &= word - 1;
                f(bit);
            }
        }
        self.ones = 0;
    }

    /// Raw backing words. Bits at positions `>= len()` are always zero.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Build a bitmap marking every index where `a[i] != b[i]`, assembling
    /// 64 comparisons per output word — the pre-copy round planner's "which
    /// pages changed since I sent them" scan, kept free of per-bit index
    /// arithmetic so the compare loop vectorizes.
    pub fn diff_u32(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "diff_u32 requires equal-length slices");
        let len = u32::try_from(a.len()).expect("bitmap length fits u32");
        let mut words = Vec::with_capacity(a.len().div_ceil(64));
        let mut ones = 0u32;
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let mut w = 0u64;
            for (bit, (x, y)) in ca.iter().zip(cb).enumerate() {
                w |= u64::from(x != y) << bit;
            }
            ones += w.count_ones();
            words.push(w);
        }
        Bitmap { words, len, ones }
    }

    /// True when every one of the `len` pages is set in at least one of
    /// `maps` (which must all have the same length). Checked 64 pages at a
    /// time by OR-ing the maps' words.
    pub fn all_covered(maps: &[&Bitmap]) -> bool {
        let Some(first) = maps.first() else {
            return false;
        };
        debug_assert!(maps.iter().all(|m| m.len == first.len));
        if first.len == 0 {
            return true;
        }
        let full_words = first.len as usize / 64;
        for wi in 0..first.words.len() {
            let mut acc = 0u64;
            for m in maps {
                acc |= m.words[wi];
            }
            let expect = if wi < full_words {
                u64::MAX
            } else {
                (1u64 << (first.len % 64)) - 1
            };
            if acc & expect != expect {
                return false;
            }
        }
        true
    }

    /// Bytes this bitmap occupies on the wire (the handoff message carries
    /// the dirty bitmap to the destination).
    pub fn wire_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert!(!z.get(50));
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(o.get(99));
        assert_eq!(o.iter_set().count(), 100);
    }

    #[test]
    fn ones_trims_partial_tail_word() {
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert_eq!(o.iter_set().last(), Some(69));
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut b = Bitmap::zeros(128);
        assert!(!b.set(64));
        assert!(b.set(64), "second set reports previous value");
        assert_eq!(b.count_ones(), 1);
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn next_set_scans_across_words() {
        let mut b = Bitmap::zeros(300);
        for i in [0u32, 63, 64, 130, 299] {
            b.set(i);
        }
        assert_eq!(b.next_set(0), Some(0));
        assert_eq!(b.next_set(1), Some(63));
        assert_eq!(b.next_set(64), Some(64));
        assert_eq!(b.next_set(65), Some(130));
        assert_eq!(b.next_set(131), Some(299));
        assert_eq!(b.next_set(300), None);
        let all: Vec<u32> = b.iter_set().collect();
        assert_eq!(all, vec![0, 63, 64, 130, 299]);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::ones(65);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.next_set(0), None);
    }

    #[test]
    fn wire_bytes_rounds_to_words() {
        assert_eq!(Bitmap::zeros(1).wire_bytes(), 8);
        assert_eq!(Bitmap::zeros(64).wire_bytes(), 8);
        assert_eq!(Bitmap::zeros(65).wire_bytes(), 16);
        // 10 GB VM at 4 KB pages: 2,621,440 pages → 320 KiB.
        assert_eq!(Bitmap::zeros(2_621_440).wire_bytes(), 327_680);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.next_set(0), None);
        assert_eq!(b.iter_set().count(), 0);
    }

    #[test]
    fn for_each_set_matches_iter_set() {
        let mut b = Bitmap::zeros(300);
        for i in [0u32, 1, 63, 64, 65, 128, 191, 192, 299] {
            b.set(i);
        }
        let mut seen = Vec::new();
        b.for_each_set(|p| seen.push(p));
        assert_eq!(seen, b.iter_set().collect::<Vec<_>>());
    }

    #[test]
    fn for_each_set_stride_boundaries() {
        // Bits straddling the 512-bit scan stride and the tail remainder.
        let mut b = Bitmap::zeros(1300);
        for i in [0u32, 511, 512, 513, 1023, 1024, 1025, 1299] {
            b.set(i);
        }
        let mut seen = Vec::new();
        b.for_each_set(|p| seen.push(p));
        assert_eq!(seen, b.iter_set().collect::<Vec<_>>());
        // An all-zero map visits nothing regardless of length.
        let mut none = 0;
        Bitmap::zeros(4097).for_each_set(|_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn drain_set_collects_and_clears() {
        let mut b = Bitmap::zeros(200);
        for i in (0..200).step_by(7) {
            b.set(i);
        }
        let expect: Vec<u32> = b.iter_set().collect();
        let mut seen = Vec::new();
        b.drain_set(|p| seen.push(p));
        assert_eq!(seen, expect);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.next_set(0), None);
    }

    #[test]
    fn diff_u32_marks_changed_indices() {
        let a: Vec<u32> = (0..200).collect();
        let mut b = a.clone();
        for i in [0usize, 63, 64, 65, 127, 199] {
            b[i] += 1;
        }
        let d = Bitmap::diff_u32(&a, &b);
        assert_eq!(d.len(), 200);
        assert_eq!(d.count_ones(), 6);
        assert_eq!(
            d.iter_set().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 127, 199]
        );
        let same = Bitmap::diff_u32(&a, &a);
        assert_eq!(same.count_ones(), 0);
    }

    #[test]
    fn all_covered_ors_across_maps() {
        let mut a = Bitmap::zeros(130);
        let mut b = Bitmap::zeros(130);
        for i in 0..130 {
            if i % 2 == 0 {
                a.set(i);
            } else {
                b.set(i);
            }
        }
        assert!(!Bitmap::all_covered(&[&a]));
        assert!(Bitmap::all_covered(&[&a, &b]));
        b.clear(129);
        assert!(!Bitmap::all_covered(&[&a, &b]));
        assert!(Bitmap::all_covered(&[&Bitmap::zeros(0)]));
        assert!(Bitmap::all_covered(&[&Bitmap::ones(64)]));
    }
}
