//! The paper's headline experiment (§V-A, Figures 4–6): four Redis VMs
//! thrash a consolidated host; one is migrated away with each technique
//! and the average YCSB throughput timeline is compared.
//!
//! ```sh
//! cargo run --release --example memory_pressure           # 1/64 scale
//! cargo run --release --example memory_pressure -- 16     # 1/16 scale
//! ```

use agile::cluster::scenario::pressure::{self, PressureConfig};
use agile::cluster::scenario::ycsb::{self, YcsbScenarioConfig};
use agile::sim::fmt_bytes;
use agile::Technique;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    println!("running at 1/{scale} of the paper's sizes\n");
    println!(
        "{:<10} {:>12} {:>14} {:>16} {:>14}",
        "technique", "mig time", "data moved", "avg ops/s (mig)", "recovered at"
    );
    for technique in [Technique::PreCopy, Technique::PostCopy, Technique::Agile] {
        let r = ycsb::run(&YcsbScenarioConfig {
            technique,
            scale,
            ..Default::default()
        });
        println!(
            "{:<10} {:>10.1} s {:>14} {:>16.0} {:>14}",
            technique.to_string(),
            r.metrics
                .total_time()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            fmt_bytes(r.metrics.migration_bytes),
            r.avg_during_migration,
            r.recovery_at_secs
                .map(|t| format!("{t} s"))
                .unwrap_or_else(|| "—".into()),
        );
    }
    println!(
        "\n(The paper's Table II: pre-copy 470 s, post-copy 247 s, agile 108 s;\n\
         Table III: 15.0 GB / 10.3 GB / 8.2 GB. Expect the same ordering and\n\
         similar ratios, not the absolute numbers.)"
    );

    // The memory-pressure flip side: donor hosts reclaiming their VMD
    // contributions. A skewed demand ramp halves the pool's capacity and
    // the elastic pool manager must relocate/demote every page.
    println!("\nelastic pool under donor-demand ramp (pool capacity halved):");
    let p = pressure::run(&PressureConfig {
        scale,
        ..Default::default()
    });
    println!(
        "  converged={} lost_placements={} relocated={} demoted={} \
         rebalance_moves={} final_spread={:.3}",
        p.converged,
        p.lost_placements,
        p.counters.pages_relocated,
        p.counters.pages_demoted,
        p.counters.rebalance_moves,
        p.final_spread,
    );
    assert!(p.converged && p.lost_placements == 0);
}
