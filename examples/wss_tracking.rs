//! Transparent working-set tracking (§V-D, Figures 9–10): watch the
//! reservation controller squeeze a 5 GB VM down onto its ~1.8 GB working
//! set by sampling the per-VM swap device's I/O rate.
//!
//! ```sh
//! cargo run --release --example wss_tracking            # 1/16 scale
//! cargo run --release --example wss_tracking -- 4       # 1/4 scale
//! ```

use agile::cluster::scenario::wss::{self, WssScenarioConfig};
use agile::sim::fmt_bytes;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let cfg = WssScenarioConfig {
        scale,
        ..Default::default()
    };
    println!("running at 1/{scale} of the paper's sizes\n");
    let r = wss::run(&cfg);

    println!(
        "time     reservation        (true WSS {})",
        fmt_bytes(r.true_wss_bytes)
    );
    let mut last_printed = f64::NEG_INFINITY;
    for &(t, v) in &r.reservation_series {
        // Print every ~20 s of simulated time.
        if t - last_printed >= 20.0 {
            let bar = "#".repeat((v / r.true_wss_bytes as f64 * 30.0) as usize);
            println!("{t:>6.0}s  {:>10}  {bar}", fmt_bytes(v as u64));
            last_printed = t;
        }
    }
    let err =
        (r.final_reservation as f64 - r.true_wss_bytes as f64).abs() / r.true_wss_bytes as f64;
    println!(
        "\nfinal reservation {} vs true working set {} ({:.1}% off)",
        fmt_bytes(r.final_reservation),
        fmt_bytes(r.true_wss_bytes),
        err * 100.0
    );
    let peak = r
        .throughput_series
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    println!("peak YCSB throughput through the transients: {peak:.0} ops/s");
}
