//! Quickstart: build a two-host cluster with a VMD memory pool, put one
//! VM under memory pressure, and migrate it with the paper's Agile
//! technique.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use agile::cluster::build::{ClusterBuilder, SwapKind};
use agile::cluster::{migrate, ClusterConfig};
use agile::migration::SourceConfig;
use agile::sim::{fmt_bytes, SimDuration, SimTime, GIB, MIB};
use agile::vm::VmConfig;
use agile::Technique;

fn main() {
    // A small cluster: source and destination hosts (1 GiB RAM each), and
    // an intermediate host contributing 4 GiB of spare memory to the VMD.
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let source = b.add_host("source", GIB, 64 * MIB, true);
    let dest = b.add_host("dest", GIB, 64 * MIB, true);
    let intermediate = b.add_host("intermediate", 8 * GIB, 64 * MIB, false);
    b.add_vmd_server(intermediate, 4 * GIB, 0);
    b.ensure_vmd_client(dest);

    // One 768 MiB VM, squeezed into a 384 MiB reservation: half its pages
    // live on its portable per-VM swap device.
    let vm = b.add_vm(
        source,
        VmConfig {
            mem_bytes: 768 * MIB,
            page_size: 4096,
            vcpus: 2,
            reservation_bytes: 384 * MIB,
            guest_os_bytes: 32 * MIB,
        },
        SwapKind::PerVmVmd,
    );
    b.preload_pages(vm, 0, (768 * MIB / 4096) as u32);

    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(1));

    println!("before migration:");
    {
        let mem = sim.state().vms[vm].vm.memory();
        println!(
            "  resident {:>10}   swapped (on VMD) {:>10}",
            fmt_bytes(mem.resident_pages() as u64 * 4096),
            fmt_bytes(mem.swapped_pages() as u64 * 4096),
        );
    }

    // Migrate with Agile: one live round sends the resident set; swapped
    // pages travel as 16-byte offsets; the destination demand-pages cold
    // pages from the VMD.
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dest,
        SourceConfig::new(Technique::Agile),
        768 * MIB,
    );
    while !sim.state().migrations[mig].finished {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
    }

    let m = sim.state().migrations[mig].src.metrics();
    println!("after migration (technique: {}):", m.technique);
    println!(
        "  total time      {:>10.3} s",
        m.total_time().unwrap().as_secs_f64()
    );
    println!(
        "  downtime        {:>10.3} s",
        m.downtime().unwrap().as_secs_f64()
    );
    println!("  data on channel {:>10}", fmt_bytes(m.migration_bytes));
    println!("  full pages sent {:>10}", m.pages_sent_full);
    println!("  offsets sent    {:>10}", m.pages_sent_as_offsets);
    println!(
        "  swap-ins for transfer {:>4} (agile never reads swap to migrate)",
        m.pages_swapped_in_for_transfer
    );
    assert_eq!(m.pages_swapped_in_for_transfer, 0);
}
