//! Closing the loop the paper sketches in §III-B/§IV-D: working-set
//! tracking feeds a watermark trigger that *automatically* migrates the
//! fewest VMs needed to relieve a consolidated host.
//!
//! Four VMs idle on a small working set; two of them heat up, the
//! aggregate tracked WSS crosses the high watermark, and the trigger
//! migrates the (provably fewest) hottest VM(s) to the standby host using
//! Agile migration.
//!
//! ```sh
//! cargo run --release --example datacenter_consolidation
//! ```

use agile::cluster::build::{start_all_workloads, ClusterBuilder, SwapKind};
use agile::cluster::scenario::{rebalance_host, set_ycsb_active_bytes};
use agile::cluster::world::WorkloadKind;
use agile::cluster::{wssctl, ClusterConfig};
use agile::migration::SourceConfig;
use agile::sim::{fmt_bytes, SimDuration, SimTime, GIB, MIB};
use agile::vm::VmConfig;
use agile::workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};
use agile::wss::WatermarkTrigger;
use agile::Technique;

const SC: u64 = 64; // 1/64 of paper sizes

fn main() {
    let cfg = ClusterConfig::default();
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let consolidated = b.add_host("consolidated", 23 * GIB / SC, 200 * MIB / SC, true);
    let standby = b.add_host("standby", 23 * GIB / SC, 200 * MIB / SC, true);
    let client_host = b.add_host("client", 16 * GIB / SC, 200 * MIB / SC, false);
    let im = b.add_host("intermediate", 128 * GIB / SC, 200 * MIB / SC, false);
    b.add_vmd_server(im, 100 * GIB / SC, 0);
    b.ensure_vmd_client(standby);

    let dataset_bytes = 9 * GIB / SC;
    let mut vms = Vec::new();
    for i in 0..4 {
        let vm = b.add_vm(
            consolidated,
            VmConfig {
                mem_bytes: 10 * GIB / SC,
                page_size: page,
                vcpus: 2,
                // Consolidated idle VMs: reservations sized to the small
                // active set, far under the watermarks.
                reservation_bytes: 5 * GIB / 2 / SC,
                guest_os_bytes: 300 * MIB / SC,
            },
            SwapKind::PerVmVmd,
        );
        let (ir, dr) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            (
                layout.alloc_region("redis-index", ((dataset_bytes / 50) / page).max(4) as u32),
                layout.alloc_region("redis-data", (dataset_bytes / page) as u32),
            )
        };
        let dataset = Dataset::new(dr, dataset_bytes / 1024, 1024, page);
        let mut model = YcsbRedis::new(dataset, ir, KeyDist::UniformPrefix, YcsbParams::default());
        model.set_active_bytes(200 * MIB / SC);
        b.attach_workload(vm, client_host, WorkloadKind::Ycsb(model));
        b.enable_os_background(vm);
        b.preload_layout(vm);
        vms.push(vm);
        let _ = i;
    }

    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    // WSS tracking on every VM so the trigger sees real estimates.
    for &vm in &vms {
        wssctl::enable_tracking(
            &mut sim,
            vm,
            agile::wss::ControllerParams::paper(64 * MIB / SC, 10 * GIB / SC),
            SimTime::from_secs(5),
        );
    }

    // The watermark trigger: checked every 5 s.
    let avail = sim.state().hosts[consolidated].mem.available_for_vms();
    let trigger = WatermarkTrigger::fractions(avail, 0.75, 0.92);
    println!(
        "watermarks on {}: high {}, low {}",
        fmt_bytes(avail),
        fmt_bytes(trigger.high_bytes),
        fmt_bytes(trigger.low_bytes)
    );
    wssctl::arm_watermark_trigger(
        &mut sim,
        consolidated,
        standby,
        trigger,
        SimDuration::from_secs(5),
        SourceConfig::new(Technique::Agile),
        10 * GIB / SC,
    );

    // At t = 60 s, two VMs heat up to a 6 GB working set each.
    for &vm in &vms[2..4] {
        sim.schedule_at(SimTime::from_secs(60), move |sim| {
            set_ycsb_active_bytes(sim, vm, 6 * GIB / SC);
            let host = sim.state().vms[vm].host;
            rebalance_host(sim, host, 128 * MIB / SC);
        });
    }

    // Narrate what happens.
    sim.schedule_every(SimTime::from_secs(10), SimDuration::from_secs(10), {
        let vms = vms.clone();
        move |sim| {
            let w = sim.state();
            let t = sim.now().as_secs();
            let agg: u64 = wssctl::host_wss(sim, consolidated)
                .iter()
                .map(|v| v.wss_bytes)
                .sum();
            let placed: Vec<String> = vms
                .iter()
                .map(|&v| {
                    format!(
                        "vm{v}@{}",
                        w.hosts[w.vms[v].host].name.chars().next().unwrap()
                    )
                })
                .collect();
            let migrating = w.migrations.iter().filter(|m| !m.finished).count();
            println!(
                "t={t:>4}s  aggregate tracked WSS {:>10}  [{}]{}",
                fmt_bytes(agg),
                placed.join(" "),
                if migrating > 0 {
                    "  (migrating…)"
                } else {
                    ""
                }
            );
            t < 240
        }
    });

    sim.run_until(SimTime::from_secs(250));

    let w = sim.state();
    let migrated: Vec<usize> = w
        .migrations
        .iter()
        .filter(|m| m.finished)
        .map(|m| m.vm)
        .collect();
    println!("\nmigrations performed: {migrated:?}");
    assert!(
        !migrated.is_empty(),
        "the watermark trigger should have fired"
    );
    assert!(
        migrated.iter().all(|vm| *vm >= 2),
        "the fewest-VMs rule should pick the heated VMs (2, 3), got {migrated:?}"
    );
    for m in &w.migrations {
        let metrics = m.src.metrics();
        println!(
            "  vm{} → standby: {} in {:.1} s ({} as offsets)",
            m.vm,
            fmt_bytes(metrics.migration_bytes),
            metrics
                .total_time()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            metrics.pages_sent_as_offsets,
        );
    }
}
